"""Backend op vocabulary for the Ising updaters.

The paper expresses one lattice sweep entirely in terms of a small set of
TensorFlow/XLA operations: batched matmul (MXU), elementwise arithmetic,
comparison and exp (VPU), stateless uniform RNG (VPU), and slicing /
concatenation / rolling (data formatting).  Every updater in
:mod:`repro.core` is written against this vocabulary, so the same
algorithm code runs on:

* :class:`~repro.backend.numpy_backend.NumpyBackend` — plain numpy, no
  accounting (fast path, used by the physics tests);
* :class:`~repro.backend.tpu_backend.TPUBackend` — numpy execution plus
  per-op time charging into a simulated TensorCore's profiler, and
  optional bfloat16 storage rounding (used by the performance harness and
  the bf16 study).

Every op quantizes its *result* with the backend dtype, which emulates a
device that stores all intermediates in that format.  Matmuls accumulate
in float32 regardless of dtype (MXU semantics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import packed_ops
from ..rng.streams import PhiloxStream
from ..tpu.dtypes import DType, FLOAT32, resolve_dtype

__all__ = ["Backend"]


class Backend:
    """Executes the op vocabulary in numpy, with charging hooks.

    Subclasses override :meth:`_charge` to account for op cost; the base
    implementation is a no-op, so ``Backend`` itself is a pure numpy
    executor.
    """

    def __init__(self, dtype: DType | str = FLOAT32) -> None:
        self.dtype = resolve_dtype(dtype)
        # Lazily built per-shape scratch for in-place quantization (bf16
        # RNE needs a uint32 bias buffer and a bool NaN mask).  Perf cache
        # only — never serialized.
        self._qscratch: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}

    # -- charging hook ---------------------------------------------------

    def _charge(
        self,
        category: str,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        batch: float | None = None,
    ) -> None:
        """Record the cost of one op.  Overridden by accounting backends.

        ``batch`` is the number of independent matrix blocks in a batched
        matmul (drives the MXU pipeline-utilization ramp).
        """

    def _nbytes(self, *arrays: np.ndarray) -> float:
        """Total HBM bytes of the given arrays under the backend dtype."""
        return float(sum(a.size for a in arrays)) * self.dtype.itemsize

    # -- tensor materialisation -------------------------------------------

    def array(self, x) -> np.ndarray:
        """Materialise ``x`` as a device tensor (quantized to the dtype)."""
        return self.dtype.quantize(np.asarray(x, dtype=np.float32))

    # -- MXU ---------------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched matrix multiply with float32 accumulation.

        Inputs are assumed already quantized (the MXU rounds its inputs to
        bfloat16; our tensors are stored pre-rounded).  The result is
        quantized on store.
        """
        out = np.matmul(a.astype(np.float32), b.astype(np.float32))
        # FLOP count: 2 * (output elements) * (contraction length).
        k = a.shape[-1]
        batch = out.size / (out.shape[-1] * out.shape[-2]) if out.ndim >= 2 else 1.0
        self._charge(
            "mxu",
            flops=2.0 * out.size * k,
            bytes_moved=self._nbytes(a, b, out),
            batch=batch,
        )
        return self.dtype.quantize(out)

    # -- VPU: elementwise --------------------------------------------------

    def _elementwise(self, out: np.ndarray, *operands: np.ndarray, flops_per_elem: float = 1.0) -> np.ndarray:
        self._charge(
            "vpu",
            flops=flops_per_elem * out.size,
            bytes_moved=self._nbytes(*operands, out),
        )
        return self.dtype.quantize(out)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.add(a, b), a, b)

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.subtract(a, b), a, b)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.multiply(a, b), a, b)

    def exp(self, a: np.ndarray) -> np.ndarray:
        # Transcendentals cost several VPU ops; use the common estimate of
        # ~8 flops per element for exp.  Energy-lowering flips produce
        # positive exponents that may overflow float32 to +inf, which is
        # the correct "always accept" ratio — silence the warning.
        with np.errstate(over="ignore"):
            out = np.exp(a)
        return self._elementwise(out, a, flops_per_elem=8.0)

    def less(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise a < b as 0.0/1.0 (devices keep masks in float)."""
        out = np.less(a, b).astype(np.float32)
        return self._elementwise(out, a, b)

    def where(self, cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.where(cond != 0, a, b).astype(np.float32)
        return self._elementwise(out, cond, a, b)

    def add_at_slice(self, target: np.ndarray, index: tuple, update: np.ndarray) -> np.ndarray:
        """In-place ``target[index] += update`` (boundary compensation).

        Counted as formatting plus a vector add: the dominant cost on real
        hardware is the strided gather/scatter of the boundary slab.
        """
        target[index] = self.dtype.quantize(target[index] + update)
        self._charge(
            "formatting",
            flops=float(update.size),
            bytes_moved=2.0 * self._nbytes(update),
        )
        return target

    def shifted_pair_sum(self, a: np.ndarray, axis: int, offset: int) -> np.ndarray:
        """``a + shift(a, offset)`` along a block axis, zero-filled at the edge.

        This is the appendix-7.2 building block: one 2-tap convolution
        replacing one band matmul — e.g. ``offset=-1, axis=-1`` computes
        ``a[..., j] + a[..., j-1]`` with 0 at j = 0, exactly what
        ``matmul(a, K_hat)`` produces, but with far better operand reuse
        on the MXU.  Block-boundary compensation stays identical to the
        matmul path.  Only the two block axes (-1, -2) are legal.
        """
        if axis not in (-1, -2):
            raise ValueError(f"axis must be -1 or -2 (block axes), got {axis}")
        if offset not in (-1, 1):
            raise ValueError(f"offset must be +1 or -1, got {offset}")
        shifted = np.zeros_like(a, dtype=np.float32)
        src = slice(None, -1) if offset == -1 else slice(1, None)
        dst = slice(1, None) if offset == -1 else slice(None, -1)
        if axis == -1:
            shifted[..., dst] = a[..., src]
        else:
            shifted[..., dst, :] = a[..., src, :]
        out = (a + shifted).astype(np.float32)
        # 2-tap im2col conv: 2 MACs = 4 flops per output element.
        self._charge(
            "conv", flops=4.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self.dtype.quantize(out)

    def conv2d_neighbors(self, a: np.ndarray) -> np.ndarray:
        """4-neighbour sum on the torus as one fused convolution.

        This is the appendix-7.2 implementation: a ``tf.nn.conv2d`` with a
        cross-shaped 3x3 kernel, which the MXU executes far more
        efficiently than the band matmuls because each loaded operand is
        reused across the whole kernel window.  Charged to the "conv"
        category so the cost model can rate it separately.

        The lattice axes are the trailing two, so a ``(batch, rows,
        cols)`` ensemble stack convolves each chain independently.
        """
        out = (
            np.roll(a, 1, axis=-2)
            + np.roll(a, -1, axis=-2)
            + np.roll(a, 1, axis=-1)
            + np.roll(a, -1, axis=-1)
        ).astype(np.float32)
        # im2col-style dense conv: 2 flops per kernel tap per output element.
        self._charge(
            "conv", flops=2.0 * 9.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self.dtype.quantize(out)

    # -- VPU: RNG ------------------------------------------------------------

    def random_uniform(
        self, shape: tuple[int, ...], stream: PhiloxStream
    ) -> np.ndarray:
        """Stateless-style uniform tensor in [0, 1) from a Philox stream.

        ``stream`` may also be a
        :class:`~repro.rng.streams.BatchedPhiloxStream`, in which case
        ``shape`` must lead with the chain axis and every chain draws
        from its own key — the draw contract of the batched ensemble.
        """
        out = stream.uniform(shape)
        # Philox4x32-10: 10 rounds x (2 mul + 4 xor/add) per 4 words, plus
        # the int->float conversion: ~20 flops per element is a fair model.
        self._charge(
            "vpu", flops=20.0 * out.size, bytes_moved=self._nbytes(out)
        )
        return self.dtype.quantize(out)

    # -- in-place (fused) vocabulary ---------------------------------------
    #
    # Every ``*_into`` op is bit-identical to its allocating twin — same
    # numpy computation, same result quantization, same _charge call —
    # but writes into caller-provided buffers so steady-state sweeps make
    # zero heap allocations.  On accounting backends the modeled cost is
    # unchanged: the fused engine is a host-side optimisation, not a
    # change to the simulated device.

    def _quantize_into(self, out: np.ndarray) -> np.ndarray:
        """Apply the dtype's store rounding to ``out`` in place."""
        rounder = self.dtype.quantize_into
        if rounder is None:
            return out
        scratch = self._qscratch.get(out.shape)
        if scratch is None:
            scratch = (
                np.empty(out.shape, dtype=np.uint32),
                np.empty(out.shape, dtype=bool),
            )
            self._qscratch[out.shape] = scratch
        return rounder(out, scratch[0], scratch[1])

    def _elementwise_into(
        self, out: np.ndarray, *operands: np.ndarray, flops_per_elem: float = 1.0
    ) -> np.ndarray:
        self._charge(
            "vpu",
            flops=flops_per_elem * out.size,
            bytes_moved=self._nbytes(*operands, out),
        )
        return self._quantize_into(out)

    def add_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.add(a, b, out=out)
        return self._elementwise_into(out, a, b)

    def subtract_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.subtract(a, b, out=out)
        return self._elementwise_into(out, a, b)

    def multiply_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.multiply(a, b, out=out)
        return self._elementwise_into(out, a, b)

    def exp_into(self, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            np.exp(a, out=out)
        return self._elementwise_into(out, a, flops_per_elem=8.0)

    def less_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Elementwise a < b into a float32 buffer as 0.0/1.0."""
        np.less(a, b, out=out, casting="unsafe")
        # 0.0/1.0 are exact in every dtype, so the store rounding the
        # allocating twin applies is the identity here — skip the pass.
        self._charge(
            "vpu", flops=float(out.size), bytes_moved=self._nbytes(a, b, out)
        )
        return out

    def take_into(self, table: np.ndarray, indices: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather ``table[indices]`` into ``out`` (acceptance-table lookup).

        Indices wrap modulo the table length (``mode="wrap"``), which the
        acceptance gather exploits: the scalar-beta table is laid out so
        the negative ``5*sigma + nn`` indices land on their slots without
        a bias add (see :class:`~repro.core.accept.AcceptanceTable`), and
        wrap is also measurably faster than numpy's bounds-checked mode.
        The table entries are already quantized device values, so no store
        rounding is needed.  Charged as a memory-bound gather: one lookup
        per element, index + result traffic.
        """
        np.take(table, indices, out=out, mode="wrap")
        self._charge(
            "formatting",
            flops=float(out.size),
            bytes_moved=self._nbytes(out) + 4.0 * indices.size,
        )
        return out

    def matmul_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """In-place twin of :meth:`matmul` (float32 accumulation)."""
        np.matmul(a, b, out=out)
        k = a.shape[-1]
        batch = out.size / (out.shape[-1] * out.shape[-2]) if out.ndim >= 2 else 1.0
        self._charge(
            "mxu",
            flops=2.0 * out.size * k,
            bytes_moved=self._nbytes(a, b, out),
            batch=batch,
        )
        return self._quantize_into(out)

    def uniform_into(self, stream: PhiloxStream, out: np.ndarray) -> np.ndarray:
        """In-place twin of :meth:`random_uniform` (same counter advance)."""
        stream.uniform_into(out)
        self._charge("vpu", flops=20.0 * out.size, bytes_moved=self._nbytes(out))
        return self._quantize_into(out)

    def band_cross_matmul_into(self, grid: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``matmul(grid, K_c) + matmul(K_r, grid)`` via in-block shifted adds.

        The Algorithm 1 kernels are shift-by-one band matrices, so the two
        MXU products are exactly the within-block left+right and up+down
        neighbour sums — sums of at most two ±1 values, exact in every
        supported dtype, hence bit-identical to the matmul formulation no
        matter how they are computed.  The host executes the cheap slice
        adds; the cost model is charged for the op sequence the device
        would run (two band matmuls plus the add), keeping modeled
        numbers independent of the fused engine.
        """
        if out is grid:
            raise ValueError("out must not alias the input")
        r, c = grid.shape[-2:]
        # Left neighbours (block column j-1), zero at the block edge.
        out[..., :, 1:] = grid[..., :, :-1]
        out[..., :, :1] = 0.0
        # Right, up, down neighbours accumulate in place.
        np.add(out[..., :, :-1], grid[..., :, 1:], out=out[..., :, :-1])
        np.add(out[..., 1:, :], grid[..., :-1, :], out=out[..., 1:, :])
        np.add(out[..., :-1, :], grid[..., 1:, :], out=out[..., :-1, :])
        batch = out.size / (r * c)
        self._charge(
            "mxu",
            flops=2.0 * out.size * c,
            bytes_moved=self._nbytes(grid, out) + c * c * self.dtype.itemsize,
            batch=batch,
        )
        self._charge(
            "mxu",
            flops=2.0 * out.size * r,
            bytes_moved=self._nbytes(grid, out) + r * r * self.dtype.itemsize,
            batch=batch,
        )
        self._charge("vpu", flops=float(out.size), bytes_moved=3.0 * self._nbytes(out))
        return self._quantize_into(out)

    def band_pair_matmul_into(
        self, a: np.ndarray, axis: int, offset: int, out: np.ndarray
    ) -> np.ndarray:
        """One ``K_hat`` band matmul via a shifted pair sum.

        ``(a @ K_hat)``, ``(K_hat^T @ a)`` and their transposes gather
        ``a[i] + a[i +/- 1]`` along one block axis with no wrap — sums of
        two ±1 values, exact in every dtype, so the slice formulation is
        bit-identical to the MXU product.  Charged as the band matmul the
        device would run (see :meth:`band_cross_matmul_into`).
        """
        if axis not in (-1, -2):
            raise ValueError(f"axis must be -1 or -2 (block axes), got {axis}")
        if offset not in (-1, 1):
            raise ValueError(f"offset must be +1 or -1, got {offset}")
        if out is a:
            raise ValueError("out must not alias the input")
        np.copyto(out, a)
        src = slice(None, -1) if offset == -1 else slice(1, None)
        dst = slice(1, None) if offset == -1 else slice(None, -1)
        if axis == -1:
            np.add(out[..., dst], a[..., src], out=out[..., dst])
        else:
            np.add(out[..., dst, :], a[..., src, :], out=out[..., dst, :])
        k = out.shape[axis]
        self._charge(
            "mxu",
            flops=2.0 * out.size * k,
            bytes_moved=self._nbytes(a, out) + k * k * self.dtype.itemsize,
            batch=out.size / (out.shape[-1] * out.shape[-2]),
        )
        return self._quantize_into(out)

    def acceptance_index_into(
        self,
        sigma: np.ndarray,
        nn: np.ndarray,
        idx_out: np.ndarray,
        fscratch: np.ndarray,
        offsets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Map (sigma, integer nn sum) pairs to acceptance-table slots.

        Computes ``idx = 5*sigma + nn`` (plus per-chain table ``offsets``
        when given): the odd values -9..9, which the 19-slot
        :class:`~repro.core.accept.AcceptanceTable` layout resolves via
        the gather's wrap mode (negative indices address the table from
        the end), so no bias add is needed for the scalar-beta case;
        per-chain offsets fold the +9 bias in.  The arithmetic runs in
        raw float32 — NOT through the dtype's store rounding — because
        table offsets for large ensembles exceed bfloat16's integer
        range; every value involved is an exact float32 integer below
        2**24, so the final int cast is exact.  Charged as a short VPU
        chain (same modeled cost as the 10-slot formulation it replaced).
        """
        np.multiply(sigma, np.float32(5.0), out=fscratch)
        np.add(fscratch, nn, out=fscratch)
        if offsets is not None:
            np.add(fscratch, offsets, out=fscratch)
        np.copyto(idx_out, fscratch, casting="unsafe")
        self._charge(
            "vpu",
            flops=(5.0 if offsets is not None else 4.0) * idx_out.size,
            bytes_moved=self._nbytes(sigma, nn) + 4.0 * idx_out.size,
        )
        return idx_out

    @staticmethod
    def _roll_raw(a: np.ndarray, shift: int, axis: int, out: np.ndarray) -> np.ndarray:
        """``out = np.roll(a, shift, axis)`` without allocating."""
        n = a.shape[axis]
        shift %= n
        if shift == 0:
            np.copyto(out, a)
            return out
        src_head = [slice(None)] * a.ndim
        src_tail = [slice(None)] * a.ndim
        dst_head = [slice(None)] * a.ndim
        dst_tail = [slice(None)] * a.ndim
        src_head[axis] = slice(n - shift, None)
        dst_head[axis] = slice(None, shift)
        src_tail[axis] = slice(None, n - shift)
        dst_tail[axis] = slice(shift, None)
        np.copyto(out[tuple(dst_head)], a[tuple(src_head)])
        np.copyto(out[tuple(dst_tail)], a[tuple(src_tail)])
        return out

    def roll_into(self, a: np.ndarray, shift: int, axis: int, out: np.ndarray) -> np.ndarray:
        self._roll_raw(a, shift, axis, out)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out

    def copy_into(self, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.copyto(out, a)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out

    def slice_copy_into(self, a: np.ndarray, index: tuple, out: np.ndarray) -> np.ndarray:
        np.copyto(out, a[index])
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(out))
        return out

    def add_at_slice_into(
        self, target: np.ndarray, index: tuple, update: np.ndarray, slab: np.ndarray
    ) -> np.ndarray:
        """In-place twin of :meth:`add_at_slice`.

        ``slab`` is a contiguous scratch buffer shaped like the boundary
        slice; it stages the quantized sum because the target slice itself
        may be a strided view the in-place rounder cannot address.
        """
        view = target[index]
        np.add(view, update, out=slab)
        self._quantize_into(slab)
        np.copyto(view, slab)
        self._charge(
            "formatting",
            flops=float(update.size),
            bytes_moved=2.0 * self._nbytes(update),
        )
        return target

    def assign_at_slice_into(
        self, target: np.ndarray, index: tuple, value: np.ndarray
    ) -> np.ndarray:
        """Overwrite ``target[index]`` with ``value`` in place.

        The halo splice of the distributed neighbour sums: after a
        boundary slab rolls, the entry that wrapped around the local edge
        is replaced by the remote core's slab.  The store is bookkeeping
        the device fuses into the roll it just performed (the same bytes
        were already charged there), so this op books no additional cost
        — but routing it through the backend instead of a raw indexed
        store keeps it visible to the traced executor's recording proxy.
        ``value`` must already hold quantized device values (it always
        does: halos are slices of device tensors).
        """
        np.copyto(target[index], value)
        return target

    def shifted_pair_sum_into(
        self, a: np.ndarray, axis: int, offset: int, out: np.ndarray
    ) -> np.ndarray:
        """In-place twin of :meth:`shifted_pair_sum` (``out`` must not alias ``a``)."""
        if axis not in (-1, -2):
            raise ValueError(f"axis must be -1 or -2 (block axes), got {axis}")
        if offset not in (-1, 1):
            raise ValueError(f"offset must be +1 or -1, got {offset}")
        if out is a:
            raise ValueError("out must not alias the input")
        np.copyto(out, a)
        src = slice(None, -1) if offset == -1 else slice(1, None)
        dst = slice(1, None) if offset == -1 else slice(None, -1)
        if axis == -1:
            np.add(out[..., dst], a[..., src], out=out[..., dst])
        else:
            np.add(out[..., dst, :], a[..., src, :], out=out[..., dst, :])
        self._charge(
            "conv", flops=4.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self._quantize_into(out)

    def conv2d_neighbors_into(
        self, a: np.ndarray, out: np.ndarray, tmp: np.ndarray
    ) -> np.ndarray:
        """In-place twin of :meth:`conv2d_neighbors` (``tmp`` is a roll buffer)."""
        if out is a or tmp is a or tmp is out:
            raise ValueError("a, out and tmp must be distinct buffers")
        # Same left-to-right float32 sum as the allocating twin, with each
        # rolled operand staged through ``tmp``.
        self._roll_raw(a, 1, -2, out)
        self._roll_raw(a, -1, -2, tmp)
        np.add(out, tmp, out=out)
        self._roll_raw(a, 1, -1, tmp)
        np.add(out, tmp, out=out)
        self._roll_raw(a, -1, -1, tmp)
        np.add(out, tmp, out=out)
        self._charge(
            "conv", flops=2.0 * 9.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self._quantize_into(out)

    # -- packed (multi-spin) vocabulary ------------------------------------
    #
    # Word kernels of the ``packed`` dtype: 64 spins per uint64 word,
    # little-endian bit order (see repro.backend.packed_ops for the
    # representation contract).  These ops charge the "alu" cost-model
    # category — integer word work on the vector unit's elementwise
    # pipe, NOT matmul parity — and account *actual* buffer bytes
    # (planes mix uint64 words, uint32 draws and uint8/bool scratch, so
    # the dtype-itemsize accounting of ``_nbytes`` would be wrong).

    @staticmethod
    def _raw_nbytes(*arrays: np.ndarray) -> float:
        """Actual HBM bytes of mixed-width packed buffers."""
        return float(sum(a.nbytes for a in arrays))

    def packed_bits_into(self, stream: PhiloxStream, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` (C-contiguous uint32) with raw Philox words.

        Same draw and counter advance as ``stream.bits_into(out)`` —
        ``ceil(out.size / 4)`` blocks — with the generator cost charged
        at the backend's RNG rate (20 flops per 32-bit word, matching
        :meth:`uniform_into` per word drawn).  The words are raw: the
        caller owns the lane split and threshold comparison.
        """
        stream.bits_into(out)
        self._charge(
            "alu", flops=20.0 * out.size, bytes_moved=self._raw_nbytes(out)
        )
        return out

    def packed_rshift_into(self, a: np.ndarray, shift: int, out: np.ndarray) -> np.ndarray:
        """``out = a >> shift`` on unsigned words; ``out`` may alias ``a``.

        The packed engine uses this to reduce 32-bit draws to their top
        24 bits in place (the exact-twin mode of the float chains'
        ``uint32 -> uniform`` mapping).
        """
        np.right_shift(a, a.dtype.type(shift), out=out)
        self._charge(
            "alu", flops=float(out.size), bytes_moved=self._raw_nbytes(a, out)
        )
        return out

    def packed_xor_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = a ^ b`` on uint64 word planes; ``out`` may alias either input.

        Used both for the neighbour disagreement planes (``spins ^
        neighbour``) and for applying a flip mask to the spin words in
        place (``spins ^= flips``) — a self-inverse store, which is why
        aliasing is explicitly allowed here and nowhere else in the
        packed vocabulary.
        """
        np.bitwise_xor(a, b, out=out)
        self._charge(
            "alu", flops=float(out.size), bytes_moved=self._raw_nbytes(a, b, out)
        )
        return out

    def packed_shift_cols_into(
        self, words: np.ndarray, direction: int, out: np.ndarray, tmp: np.ndarray
    ) -> np.ndarray:
        """Column-neighbour bit plane with word carry (torus wrap).

        ``direction=+1`` is the column-(j-1) plane, ``-1`` the
        column-(j+1) plane; see :func:`repro.backend.packed_ops.shift_cols_into`
        for the exact bit algebra and aliasing rules (``out``/``tmp``
        must not alias ``words`` or each other).  Row neighbours need no
        bit carry — use :meth:`roll_into` on axis ``-2`` for those.
        """
        if out is words or tmp is words or tmp is out:
            raise ValueError("words, out and tmp must be distinct buffers")
        packed_ops.shift_cols_into(words, direction, out, tmp)
        self._charge(
            "alu",
            flops=3.0 * out.size,
            bytes_moved=self._raw_nbytes(words, out),
        )
        return out

    def packed_compare_pack_into(
        self,
        values: np.ndarray,
        threshold: "np.ndarray | np.number",
        out: np.ndarray,
        cmp: np.ndarray,
        byte_lo: np.ndarray,
        byte_tmp: np.ndarray,
    ) -> np.ndarray:
        """Pack the acceptance mask ``values < threshold`` into words.

        See :func:`repro.backend.packed_ops.compare_pack_into` for shape
        and aliasing contracts.  Charged as half a word-op per site lane
        (the compare and the byte-pack passes both run at full vector
        width over sub-word lanes).
        """
        packed_ops.compare_pack_into(values, threshold, out, cmp, byte_lo, byte_tmp)
        self._charge(
            "alu",
            flops=0.5 * values.size,
            bytes_moved=self._raw_nbytes(values, out),
        )
        return out

    def packed_full_adder_into(
        self,
        d1: np.ndarray,
        d2: np.ndarray,
        d3: np.ndarray,
        d4: np.ndarray,
        low: np.ndarray,
        bit1: np.ndarray,
        bit2: np.ndarray,
        s1: np.ndarray,
        s2: np.ndarray,
    ) -> None:
        """Bitwise full adders: neighbour disagreement count per bit lane.

        In-place carry network of the multi-spin popcount (12 word ops);
        ``d1``/``d3`` are consumed as carry scratch.  See
        :func:`repro.backend.packed_ops.full_adder_into` for the full
        aliasing contract.
        """
        packed_ops.full_adder_into(d1, d2, d3, d4, low, bit1, bit2, s1, s2)
        self._charge(
            "alu",
            flops=12.0 * low.size,
            bytes_moved=self._raw_nbytes(d1, d2, d3, d4, low, bit1, bit2),
        )

    def packed_flip_select_into(
        self,
        low: np.ndarray,
        bit1: np.ndarray,
        bit2: np.ndarray,
        r1: np.ndarray,
        r0: np.ndarray,
        out: np.ndarray,
        tmp: np.ndarray,
    ) -> np.ndarray:
        """Three-case Metropolis flip mask from count planes + acceptance words.

        ``out = (k>=2) | (k==1 & r1) | (k==0 & r0)`` in 9 word ops; see
        :func:`repro.backend.packed_ops.flip_select_into` for aliasing
        rules (``out``/``tmp`` must not alias any input).
        """
        if out is tmp:
            raise ValueError("out and tmp must be distinct buffers")
        packed_ops.flip_select_into(low, bit1, bit2, r1, r0, out, tmp)
        self._charge(
            "alu",
            flops=9.0 * out.size,
            bytes_moved=self._raw_nbytes(low, bit1, bit2, r1, r0, out),
        )
        return out

    def packed_pack(self, bits: np.ndarray) -> np.ndarray:
        """Pack a 0/1 site plane into uint64 words (allocating; boundary only).

        Wraps :func:`repro.baselines.multispin.pack_bits` with a
        formatting charge — state import/export, never the sweep hot
        path (steady-state packed sweeps call only ``*_into`` ops).
        """
        from ..baselines.multispin import pack_bits

        out = pack_bits(bits)
        self._charge("formatting", bytes_moved=2.0 * self._raw_nbytes(out))
        return out

    def packed_unpack(self, words: np.ndarray, cols: int) -> np.ndarray:
        """Unpack uint64 words to a 0/1 site plane (allocating; boundary only)."""
        from ..baselines.multispin import unpack_bits

        out = unpack_bits(words, cols)
        self._charge("formatting", bytes_moved=2.0 * self._raw_nbytes(words))
        return out

    # -- data formatting -------------------------------------------------------

    def roll(self, a: np.ndarray, shift: int, axis: int) -> np.ndarray:
        out = np.roll(a, shift, axis=axis)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out

    def concat(self, parts: Sequence[np.ndarray], axis: int) -> np.ndarray:
        out = np.concatenate(parts, axis=axis)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(out))
        return out

    def slice_copy(self, a: np.ndarray, index: tuple) -> np.ndarray:
        """Materialise a copy of ``a[index]`` (XLA slices always copy)."""
        out = np.ascontiguousarray(a[index])
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(out))
        return out

    def reshape(self, a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        out = np.reshape(a, shape)
        # Logical reshapes are free on layouts that match tiling; charge a
        # token byte count so pathological reshape-heavy code is visible.
        self._charge("formatting", bytes_moved=0.0)
        return out

    def copy(self, a: np.ndarray) -> np.ndarray:
        out = np.array(a, dtype=np.float32, copy=True)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out
