"""Backend op vocabulary for the Ising updaters.

The paper expresses one lattice sweep entirely in terms of a small set of
TensorFlow/XLA operations: batched matmul (MXU), elementwise arithmetic,
comparison and exp (VPU), stateless uniform RNG (VPU), and slicing /
concatenation / rolling (data formatting).  Every updater in
:mod:`repro.core` is written against this vocabulary, so the same
algorithm code runs on:

* :class:`~repro.backend.numpy_backend.NumpyBackend` — plain numpy, no
  accounting (fast path, used by the physics tests);
* :class:`~repro.backend.tpu_backend.TPUBackend` — numpy execution plus
  per-op time charging into a simulated TensorCore's profiler, and
  optional bfloat16 storage rounding (used by the performance harness and
  the bf16 study).

Every op quantizes its *result* with the backend dtype, which emulates a
device that stores all intermediates in that format.  Matmuls accumulate
in float32 regardless of dtype (MXU semantics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..rng.streams import PhiloxStream
from ..tpu.dtypes import DType, FLOAT32, resolve_dtype

__all__ = ["Backend"]


class Backend:
    """Executes the op vocabulary in numpy, with charging hooks.

    Subclasses override :meth:`_charge` to account for op cost; the base
    implementation is a no-op, so ``Backend`` itself is a pure numpy
    executor.
    """

    def __init__(self, dtype: DType | str = FLOAT32) -> None:
        self.dtype = resolve_dtype(dtype)

    # -- charging hook ---------------------------------------------------

    def _charge(
        self,
        category: str,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        batch: float | None = None,
    ) -> None:
        """Record the cost of one op.  Overridden by accounting backends.

        ``batch`` is the number of independent matrix blocks in a batched
        matmul (drives the MXU pipeline-utilization ramp).
        """

    def _nbytes(self, *arrays: np.ndarray) -> float:
        """Total HBM bytes of the given arrays under the backend dtype."""
        return float(sum(a.size for a in arrays)) * self.dtype.itemsize

    # -- tensor materialisation -------------------------------------------

    def array(self, x) -> np.ndarray:
        """Materialise ``x`` as a device tensor (quantized to the dtype)."""
        return self.dtype.quantize(np.asarray(x, dtype=np.float32))

    # -- MXU ---------------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched matrix multiply with float32 accumulation.

        Inputs are assumed already quantized (the MXU rounds its inputs to
        bfloat16; our tensors are stored pre-rounded).  The result is
        quantized on store.
        """
        out = np.matmul(a.astype(np.float32), b.astype(np.float32))
        # FLOP count: 2 * (output elements) * (contraction length).
        k = a.shape[-1]
        batch = out.size / (out.shape[-1] * out.shape[-2]) if out.ndim >= 2 else 1.0
        self._charge(
            "mxu",
            flops=2.0 * out.size * k,
            bytes_moved=self._nbytes(a, b, out),
            batch=batch,
        )
        return self.dtype.quantize(out)

    # -- VPU: elementwise --------------------------------------------------

    def _elementwise(self, out: np.ndarray, *operands: np.ndarray, flops_per_elem: float = 1.0) -> np.ndarray:
        self._charge(
            "vpu",
            flops=flops_per_elem * out.size,
            bytes_moved=self._nbytes(*operands, out),
        )
        return self.dtype.quantize(out)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.add(a, b), a, b)

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.subtract(a, b), a, b)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._elementwise(np.multiply(a, b), a, b)

    def exp(self, a: np.ndarray) -> np.ndarray:
        # Transcendentals cost several VPU ops; use the common estimate of
        # ~8 flops per element for exp.  Energy-lowering flips produce
        # positive exponents that may overflow float32 to +inf, which is
        # the correct "always accept" ratio — silence the warning.
        with np.errstate(over="ignore"):
            out = np.exp(a)
        return self._elementwise(out, a, flops_per_elem=8.0)

    def less(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise a < b as 0.0/1.0 (devices keep masks in float)."""
        out = np.less(a, b).astype(np.float32)
        return self._elementwise(out, a, b)

    def where(self, cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.where(cond != 0, a, b).astype(np.float32)
        return self._elementwise(out, cond, a, b)

    def add_at_slice(self, target: np.ndarray, index: tuple, update: np.ndarray) -> np.ndarray:
        """In-place ``target[index] += update`` (boundary compensation).

        Counted as formatting plus a vector add: the dominant cost on real
        hardware is the strided gather/scatter of the boundary slab.
        """
        target[index] = self.dtype.quantize(target[index] + update)
        self._charge(
            "formatting",
            flops=float(update.size),
            bytes_moved=2.0 * self._nbytes(update),
        )
        return target

    def shifted_pair_sum(self, a: np.ndarray, axis: int, offset: int) -> np.ndarray:
        """``a + shift(a, offset)`` along a block axis, zero-filled at the edge.

        This is the appendix-7.2 building block: one 2-tap convolution
        replacing one band matmul — e.g. ``offset=-1, axis=-1`` computes
        ``a[..., j] + a[..., j-1]`` with 0 at j = 0, exactly what
        ``matmul(a, K_hat)`` produces, but with far better operand reuse
        on the MXU.  Block-boundary compensation stays identical to the
        matmul path.  Only the two block axes (-1, -2) are legal.
        """
        if axis not in (-1, -2):
            raise ValueError(f"axis must be -1 or -2 (block axes), got {axis}")
        if offset not in (-1, 1):
            raise ValueError(f"offset must be +1 or -1, got {offset}")
        shifted = np.zeros_like(a, dtype=np.float32)
        src = slice(None, -1) if offset == -1 else slice(1, None)
        dst = slice(1, None) if offset == -1 else slice(None, -1)
        if axis == -1:
            shifted[..., dst] = a[..., src]
        else:
            shifted[..., dst, :] = a[..., src, :]
        out = (a + shifted).astype(np.float32)
        # 2-tap im2col conv: 2 MACs = 4 flops per output element.
        self._charge(
            "conv", flops=4.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self.dtype.quantize(out)

    def conv2d_neighbors(self, a: np.ndarray) -> np.ndarray:
        """4-neighbour sum on the torus as one fused convolution.

        This is the appendix-7.2 implementation: a ``tf.nn.conv2d`` with a
        cross-shaped 3x3 kernel, which the MXU executes far more
        efficiently than the band matmuls because each loaded operand is
        reused across the whole kernel window.  Charged to the "conv"
        category so the cost model can rate it separately.

        The lattice axes are the trailing two, so a ``(batch, rows,
        cols)`` ensemble stack convolves each chain independently.
        """
        out = (
            np.roll(a, 1, axis=-2)
            + np.roll(a, -1, axis=-2)
            + np.roll(a, 1, axis=-1)
            + np.roll(a, -1, axis=-1)
        ).astype(np.float32)
        # im2col-style dense conv: 2 flops per kernel tap per output element.
        self._charge(
            "conv", flops=2.0 * 9.0 * out.size, bytes_moved=self._nbytes(a, out)
        )
        return self.dtype.quantize(out)

    # -- VPU: RNG ------------------------------------------------------------

    def random_uniform(
        self, shape: tuple[int, ...], stream: PhiloxStream
    ) -> np.ndarray:
        """Stateless-style uniform tensor in [0, 1) from a Philox stream.

        ``stream`` may also be a
        :class:`~repro.rng.streams.BatchedPhiloxStream`, in which case
        ``shape`` must lead with the chain axis and every chain draws
        from its own key — the draw contract of the batched ensemble.
        """
        out = stream.uniform(shape)
        # Philox4x32-10: 10 rounds x (2 mul + 4 xor/add) per 4 words, plus
        # the int->float conversion: ~20 flops per element is a fair model.
        self._charge(
            "vpu", flops=20.0 * out.size, bytes_moved=self._nbytes(out)
        )
        return self.dtype.quantize(out)

    # -- data formatting -------------------------------------------------------

    def roll(self, a: np.ndarray, shift: int, axis: int) -> np.ndarray:
        out = np.roll(a, shift, axis=axis)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out

    def concat(self, parts: Sequence[np.ndarray], axis: int) -> np.ndarray:
        out = np.concatenate(parts, axis=axis)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(out))
        return out

    def slice_copy(self, a: np.ndarray, index: tuple) -> np.ndarray:
        """Materialise a copy of ``a[index]`` (XLA slices always copy)."""
        out = np.ascontiguousarray(a[index])
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(out))
        return out

    def reshape(self, a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        out = np.reshape(a, shape)
        # Logical reshapes are free on layouts that match tiling; charge a
        # token byte count so pathological reshape-heavy code is visible.
        self._charge("formatting", bytes_moved=0.0)
        return out

    def copy(self, a: np.ndarray) -> np.ndarray:
        out = np.array(a, dtype=np.float32, copy=True)
        self._charge("formatting", bytes_moved=2.0 * self._nbytes(a))
        return out
