"""Pure numpy word kernels of the packed (multi-spin) representation.

These are the allocation-free building blocks behind the ``packed_*``
methods of :class:`~repro.backend.base.Backend`: every function is an
``*_into`` kernel writing into caller-owned buffers, so a steady-state
packed sweep performs no heap allocation — the same contract the fused
float kernels honour (see ``docs/packed_engine.md``).

Representation (shared with :mod:`repro.baselines.multispin`):

* a packed plane is a ``(..., rows, cols/64)`` uint64 array, one compact
  quarter per plane, with optional leading batch axes;
* bit ``j`` of word ``w`` holds lattice column ``64*w + j`` (LSB-first,
  little-endian bit order), so shifting words left by one moves every
  spin one column higher; word *values* are host-independent;
* acceptance randomness is compared in integer space: a uniform draw of
  ``rng_bits`` bits accepts iff it is below ``ceil(t * 2**rng_bits)``
  where ``t`` is the float32 Metropolis threshold (see
  :func:`packed_threshold`).

Unless a docstring says otherwise, ``out`` must not alias any input.
All kernels operate on the trailing two axes and broadcast over leading
batch axes, so solo ``(rows, words)`` and batched ``(B, rows, words)``
planes share one code path.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "pack_bool_into",
    "compare_pack_into",
    "shift_cols_into",
    "full_adder_into",
    "flip_select_into",
    "packed_threshold",
    "site_values_u16",
]

_WORD = 64
_ONE = np.uint64(1)
_SIXTY_THREE = np.uint64(_WORD - 1)


def packed_threshold(t: "np.floating | np.ndarray", rng_bits: int) -> np.ndarray:
    """Integer acceptance threshold ``T = ceil(t * 2**rng_bits)`` as uint32.

    For an integer draw ``m`` uniform on ``[0, 2**rng_bits)``,
    ``m < T  <=>  m < t * 2**rng_bits  <=>  m / 2**rng_bits < t`` —
    exactly, because ``T`` is computed in float64 where the product of a
    float32 ``t`` with a power of two is representable without rounding.
    ``t`` in (0, 1] gives ``T <= 2**rng_bits``, which can exceed the
    ``rng_bits``-bit lane range — hence the uint32 return even for
    16-bit draws (a uint16 would overflow at ``T == 2**16``).

    Accepts a scalar or an array of per-chain thresholds; the result has
    the same shape.
    """
    if not 1 <= rng_bits <= 31:
        raise ValueError(f"rng_bits must be in [1, 31], got {rng_bits}")
    scaled = np.ceil(np.asarray(t, dtype=np.float64) * float(2**rng_bits))
    if np.any(scaled < 0) or np.any(scaled > 2**rng_bits):
        raise ValueError(f"threshold {t!r} outside [0, 1]")
    return scaled.astype(np.uint32)


def site_values_u16(bits: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """View a uint32 draw buffer as per-site 16-bit lanes shaped ``shape``.

    Word ``w`` of ``bits`` feeds two consecutive sites (row-major):
    ``w & 0xFFFF`` then ``w >> 16`` — a host-independent contract.  On
    little-endian hosts this is a free reinterpreting view of ``bits``
    (the packed engine's zero-allocation fast path); on big-endian hosts
    the lanes are materialised arithmetically (allocating — correctness
    fallback only).
    """
    if bits.dtype != np.uint32 or not bits.flags["C_CONTIGUOUS"]:
        raise ValueError("bits must be a C-contiguous uint32 array")
    if int(np.prod(shape)) != 2 * bits.size:
        raise ValueError(f"shape {shape} does not hold {2 * bits.size} lanes")
    if sys.byteorder == "little":
        return bits.view(np.uint16).reshape(shape)
    lanes = np.empty(bits.shape + (2,), dtype=np.uint16)
    lanes[..., 0] = bits & np.uint32(0xFFFF)
    lanes[..., 1] = bits >> np.uint32(16)
    return lanes.reshape(shape)


def pack_bool_into(
    cmp: np.ndarray,
    out: np.ndarray,
    byte_lo: np.ndarray,
    byte_tmp: np.ndarray,
) -> np.ndarray:
    """Pack a boolean site plane into uint64 words without allocating.

    The in-place analogue of :func:`repro.baselines.multispin.pack_bits`
    (``np.packbits`` has no ``out=``): eight strided shift-OR passes
    compose each byte LSB-first, then the byte plane is reinterpreted as
    little-endian uint64 words — bit ``j`` of word ``w`` is site column
    ``64*w + j``, identical to ``pack_bits``.

    Parameters
    ----------
    cmp:
        ``(..., rows, cols)`` bool plane, C-contiguous, ``cols`` a
        multiple of 64.
    out:
        ``(..., rows, cols/64)`` uint64 destination.
    byte_lo, byte_tmp:
        ``(..., rows, cols/8)`` uint8 scratch.

    None of the four arrays may alias another.
    """
    cols = cmp.shape[-1]
    if cols % _WORD:
        raise ValueError(f"columns ({cols}) must be a multiple of {_WORD}")
    flat = cmp.view(np.uint8).reshape(cmp.shape[:-1] + (cols,))
    np.copyto(byte_lo, flat[..., 0::8], casting="unsafe")
    for k in range(1, 8):
        np.copyto(byte_tmp, flat[..., k::8], casting="unsafe")
        np.left_shift(byte_tmp, np.uint8(k), out=byte_tmp)
        np.bitwise_or(byte_lo, byte_tmp, out=byte_lo)
    # Bytes compose little-endian into words; on big-endian hosts the
    # '<u8' view is a byte-order-aware copy into native out words.
    np.copyto(
        out,
        byte_lo.reshape(out.shape[:-1] + (-1,)).view(np.dtype("<u8")),
        casting="unsafe",
    )
    return out


def compare_pack_into(
    values: np.ndarray,
    threshold: "np.ndarray | np.number",
    out: np.ndarray,
    cmp: np.ndarray,
    byte_lo: np.ndarray,
    byte_tmp: np.ndarray,
) -> np.ndarray:
    """Pack the acceptance mask ``values < threshold`` into uint64 words.

    ``values`` is a ``(..., rows, cols)`` site plane — integer lanes
    from :func:`site_values_u16` / shifted 24-bit words, or float32
    uniforms on the explicit-``probs`` path — and ``threshold`` a scalar
    or a ``(..., 1, 1)``-broadcastable per-chain array of the matching
    comparison space.  ``cmp`` is bool scratch shaped like ``values``;
    ``byte_lo``/``byte_tmp``/``out`` as in :func:`pack_bool_into`.  No
    argument may alias another.
    """
    np.less(values, threshold, out=cmp)
    return pack_bool_into(cmp, out, byte_lo, byte_tmp)


def shift_cols_into(
    words: np.ndarray, direction: int, out: np.ndarray, tmp: np.ndarray
) -> np.ndarray:
    """Bit plane of the column-neighbour, wrapping words on the torus.

    ``direction=+1`` builds the column-(j-1) ("prev") neighbour plane:
    ``(w << 1) | (roll(w, 1, axis=-1) >> 63)``; ``direction=-1`` the
    column-(j+1) ("next") plane — bit-identical to the ``_prev_col`` /
    ``_next_col`` helpers of :mod:`repro.baselines.multispin`.  ``tmp``
    is uint64 scratch shaped like ``words``; ``out`` and ``tmp`` must
    not alias ``words`` or each other.
    """
    if direction not in (1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if direction == 1:
        np.copyto(tmp[..., 1:], words[..., :-1])
        np.copyto(tmp[..., :1], words[..., -1:])
        np.left_shift(words, _ONE, out=out)
        np.right_shift(tmp, _SIXTY_THREE, out=tmp)
    else:
        np.copyto(tmp[..., :-1], words[..., 1:])
        np.copyto(tmp[..., -1:], words[..., :1])
        np.right_shift(words, _ONE, out=out)
        np.left_shift(tmp, _SIXTY_THREE, out=tmp)
    np.bitwise_or(out, tmp, out=out)
    return out


def full_adder_into(
    d1: np.ndarray,
    d2: np.ndarray,
    d3: np.ndarray,
    d4: np.ndarray,
    low: np.ndarray,
    bit1: np.ndarray,
    bit2: np.ndarray,
    s1: np.ndarray,
    s2: np.ndarray,
) -> None:
    """Bitwise full adders: per-bit k = d1+d2+d3+d4 as planes (low, bit1, bit2).

    In-place version of
    :func:`repro.baselines.multispin._disagreement_count_bits` — same
    carry network, every temporary caller-owned.  ``d1`` and ``d3`` are
    *consumed* (overwritten with carry planes); ``d2``/``d4`` are read
    only.  ``low``/``bit1``/``bit2``/``s1``/``s2`` are uint64 outputs
    and scratch shaped like the inputs; no two arguments may alias.
    """
    np.bitwise_xor(d1, d2, out=s1)  # s1 = sum(d1, d2)
    np.bitwise_and(d1, d2, out=d1)  # d1 = carry(d1, d2) = c1
    np.bitwise_xor(d3, d4, out=s2)  # s2 = sum(d3, d4)
    np.bitwise_and(d3, d4, out=d3)  # d3 = carry(d3, d4) = c2
    np.bitwise_xor(s1, s2, out=low)  # k bit 0
    np.bitwise_and(s1, s2, out=s1)  # s1 = lc
    # k = 2*(c1 + c2 + lc) + low; the carry sum needs two bits.
    np.bitwise_xor(d1, d3, out=s2)  # s2 = c1 ^ c2
    np.bitwise_xor(s2, s1, out=bit1)
    np.bitwise_or(d1, d3, out=s2)  # s2 = c1 | c2
    np.bitwise_and(s2, s1, out=s2)  # s2 = lc & (c1 | c2)
    np.bitwise_and(d1, d3, out=d1)  # d1 = c1 & c2
    np.bitwise_or(d1, s2, out=bit2)


def flip_select_into(
    low: np.ndarray,
    bit1: np.ndarray,
    bit2: np.ndarray,
    r1: np.ndarray,
    r0: np.ndarray,
    out: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """Three-case Metropolis flip mask from the disagreement-count planes.

    ``out = (k>=2) | (k==1 & r1) | (k==0 & r0)`` where ``k`` is encoded
    by ``(low, bit1, bit2)`` from :func:`full_adder_into` and ``r1`` /
    ``r0`` are the packed acceptance masks for thresholds
    ``exp(-4 beta)`` / ``exp(-8 beta)``.  ``tmp`` is uint64 scratch;
    ``out``/``tmp`` must not alias any input or each other.  ``bit1`` /
    ``bit2`` / ``low`` / ``r1`` / ``r0`` are read only.
    """
    np.bitwise_or(bit1, bit2, out=tmp)  # tmp = k >= 2
    np.bitwise_or(tmp, low, out=out)  # out = k >= 1
    np.bitwise_not(out, out=out)  # out = k == 0
    np.bitwise_and(out, r0, out=out)
    np.bitwise_or(out, tmp, out=out)  # + always-flip cases
    np.bitwise_not(tmp, out=tmp)  # tmp = k < 2
    np.bitwise_and(tmp, low, out=tmp)  # tmp = k == 1
    np.bitwise_and(tmp, r1, out=tmp)
    np.bitwise_or(out, tmp, out=out)
    return out
