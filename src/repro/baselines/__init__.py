"""Baseline implementations and published comparison numbers."""

from .multispin import MultispinState, MultispinUpdater, pack_bits, unpack_bits
from .numpy_roll import RollUpdater
from .published import (
    ALL_BENCHMARKS,
    BLOCK_2010_GPU,
    FPGA_ORTEGA_2016,
    MULTI_GPU_64_BLOCK_2010,
    PREIS_2009_GPU,
    PublishedBenchmark,
    ROMERO_2019_DGX2,
    ROMERO_2019_DGX2H,
    ROMERO_2019_V100,
    TESLA_V100_THIS_PAPER,
    TPU_V3_POD_512,
    TPU_V3_SINGLE_CORE,
)

__all__ = [
    "MultispinState",
    "MultispinUpdater",
    "pack_bits",
    "unpack_bits",
    "RollUpdater",
    "ALL_BENCHMARKS",
    "BLOCK_2010_GPU",
    "FPGA_ORTEGA_2016",
    "MULTI_GPU_64_BLOCK_2010",
    "PREIS_2009_GPU",
    "PublishedBenchmark",
    "ROMERO_2019_DGX2",
    "ROMERO_2019_DGX2H",
    "ROMERO_2019_V100",
    "TESLA_V100_THIS_PAPER",
    "TPU_V3_POD_512",
    "TPU_V3_SINGLE_CORE",
]
