"""Plain-numpy roll-based checkerboard updater — the host CPU baseline.

This is the textbook vectorised implementation a numpy user would write:
4-neighbour sums via ``np.roll`` and colour masks, with no backend layer
or device accounting.  It serves two purposes: (a) the measured host-side
baseline in the benchmark harness (what "a CPU" achieves per sweep), and
(b) an independent implementation that must produce bit-identical chains
to the backend-based updaters when fed the same uniforms.
"""

from __future__ import annotations

import numpy as np

from ..core.lattice import checkerboard_mask
from ..rng.streams import PhiloxStream

__all__ = ["RollUpdater"]


class RollUpdater:
    """Mask-based checkerboard Metropolis with roll neighbour sums."""

    def __init__(self, beta: float, field: float = 0.0) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.field = float(field)
        self._factor = np.float32(-2.0 * beta)
        self._mask_cache: dict[tuple[int, int], dict[str, np.ndarray]] = {}

    def _masks(self, shape: tuple[int, int]) -> dict[str, np.ndarray]:
        masks = self._mask_cache.get(shape)
        if masks is None:
            masks = {
                color: checkerboard_mask(shape, color)
                for color in ("black", "white")
            }
            self._mask_cache[shape] = masks
        return masks

    def update_color(
        self,
        plain: np.ndarray,
        color: str,
        stream: PhiloxStream | None = None,
        probs: np.ndarray | None = None,
    ) -> np.ndarray:
        """One colour phase; float ops mirror the backend path exactly."""
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs = stream.uniform(plain.shape)
        nn = (
            np.roll(plain, 1, axis=0)
            + np.roll(plain, -1, axis=0)
            + np.roll(plain, 1, axis=1)
            + np.roll(plain, -1, axis=1)
        ).astype(np.float32)
        if self.field != 0.0:
            nn = (nn + np.float32(self.field)).astype(np.float32)
        ratio = np.exp(self._factor * (plain * nn))
        flips = (probs < ratio).astype(np.float32) * self._masks(plain.shape)[color]
        return (plain - np.float32(2.0) * flips * plain).astype(np.float32)

    def sweep(
        self,
        plain: np.ndarray,
        stream: PhiloxStream | None = None,
        probs_black: np.ndarray | None = None,
        probs_white: np.ndarray | None = None,
    ) -> np.ndarray:
        plain = self.update_color(plain, "black", stream, probs_black)
        return self.update_color(plain, "white", stream, probs_white)

    # -- uniform interface ----------------------------------------------------

    @staticmethod
    def to_state(plain: np.ndarray) -> np.ndarray:
        return np.asarray(plain, dtype=np.float32)

    @staticmethod
    def to_plain(state: np.ndarray) -> np.ndarray:
        return state

    def sweep_plain(self, plain: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        return self.sweep(self.to_state(plain), stream)
