"""Published reference benchmark numbers the paper compares against.

We cannot re-run CUDA, MPI-GPU or FPGA comparators in this environment,
and neither did the paper for most of them — it quotes published numbers.
This module records those values (with provenance) as data, so the
benchmark harness can print the same comparison rows (Tables 1-2) and the
same series (Fig. 8) as the paper.

Values marked ``approximate=True`` were read off a figure rather than a
table and are used only for plot shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PublishedBenchmark",
    "PREIS_2009_GPU",
    "BLOCK_2010_GPU",
    "TESLA_V100_THIS_PAPER",
    "FPGA_ORTEGA_2016",
    "MULTI_GPU_64_BLOCK_2010",
    "ROMERO_2019_V100",
    "ROMERO_2019_DGX2",
    "ROMERO_2019_DGX2H",
    "TPU_V3_SINGLE_CORE",
    "TPU_V3_POD_512",
    "ALL_BENCHMARKS",
]


@dataclass(frozen=True)
class PublishedBenchmark:
    """One published throughput data point for 2D Ising checkerboard MCMC."""

    system: str
    flips_per_ns: float
    n_devices: int = 1
    lattice: str = ""
    source: str = ""
    energy_nj_per_flip: float | None = None
    approximate: bool = False
    notes: str = ""

    @property
    def flips_per_ns_per_device(self) -> float:
        return self.flips_per_ns / self.n_devices


PREIS_2009_GPU = PublishedBenchmark(
    system="GTX 280 GPU (Preis et al.)",
    flips_per_ns=7.9774,
    lattice="best variant",
    source="Preis et al., J. Comput. Phys. 228 (2009); Block et al. (2010)",
    notes="The 'GPU in [23, 3]' row of the paper's Table 1.",
)

BLOCK_2010_GPU = PublishedBenchmark(
    system="multi-spin GPU (Block et al.)",
    flips_per_ns=7.9774,
    source="Block, Virnau, Preis, Comput. Phys. Commun. 181 (2010)",
    notes="Best-performing single-GPU variant of the follow-up paper.",
)

TESLA_V100_THIS_PAPER = PublishedBenchmark(
    system="Tesla V100 (paper's CUDA 10.1 implementation)",
    flips_per_ns=11.3704,
    energy_nj_per_flip=21.9869,
    source="Yang et al. SC19, Table 1",
    notes="Checkerboard with cuRand + Thrust and a custom memory allocator.",
)

FPGA_ORTEGA_2016 = PublishedBenchmark(
    system="FPGA (Ortega-Zamorano et al.)",
    flips_per_ns=614.4,
    source="IEEE TPDS 27(9), 2016",
    notes="The 'FPGA in [20]' row of the paper's Table 1.",
)

MULTI_GPU_64_BLOCK_2010 = PublishedBenchmark(
    system="64 GPUs + MPI (Block et al.)",
    flips_per_ns=206.0,
    n_devices=64,
    lattice="800000^2",
    source="Block et al. (2010), quoted in the paper's Table 2",
    notes="~3000 ms per whole-lattice update; host-mediated MPI halo exchange.",
)

ROMERO_2019_V100 = PublishedBenchmark(
    system="V100, multi-spin (Romero et al.)",
    flips_per_ns=126.0,
    source="Romero et al., arXiv:1906.06297",
    approximate=True,
    notes="Read off the paper's Fig. 8 comparison; plot shape only.",
)

ROMERO_2019_DGX2 = PublishedBenchmark(
    system="DGX-2 (16x V100, Romero et al.)",
    flips_per_ns=1800.0,
    n_devices=16,
    source="Romero et al., arXiv:1906.06297",
    approximate=True,
    notes="Read off the paper's Fig. 8 comparison; plot shape only.",
)

ROMERO_2019_DGX2H = PublishedBenchmark(
    system="DGX-2H (16x V100 high-clock, Romero et al.)",
    flips_per_ns=2000.0,
    n_devices=16,
    source="Romero et al., arXiv:1906.06297",
    approximate=True,
    notes="Read off the paper's Fig. 8 comparison; plot shape only.",
)

TPU_V3_SINGLE_CORE = PublishedBenchmark(
    system="TPU v3 single core (paper, Table 1)",
    flips_per_ns=12.8783,
    lattice="(640x128)^2",
    energy_nj_per_flip=7.7650,
    source="Yang et al. SC19, Table 1",
)

TPU_V3_POD_512 = PublishedBenchmark(
    system="TPU v3 512 cores (paper, Table 2)",
    flips_per_ns=5853.0408,
    n_devices=512,
    lattice="(14336x128)^2",
    energy_nj_per_flip=8.7476,
    source="Yang et al. SC19, Table 2",
)

ALL_BENCHMARKS: tuple[PublishedBenchmark, ...] = (
    PREIS_2009_GPU,
    TESLA_V100_THIS_PAPER,
    FPGA_ORTEGA_2016,
    MULTI_GPU_64_BLOCK_2010,
    ROMERO_2019_V100,
    ROMERO_2019_DGX2,
    ROMERO_2019_DGX2H,
    TPU_V3_SINGLE_CORE,
    TPU_V3_POD_512,
)
