"""Preis-style multi-spin-coded (bit-packed) checkerboard updater.

The GPU baselines the paper compares against (Preis et al. 2009, Block et
al. 2010) pack spins as bits to compress memory traffic and evaluate the
Metropolis test with integer logic.  This module implements the full
technique in vectorised numpy:

* each compact quarter (the interleaved sub-lattices of Algorithm 2) is
  packed 64 spins per ``uint64`` word, little-endian bit order;
* the number of *disagreeing* neighbours k in {0..4} is computed with
  bitwise full adders on the four neighbour XOR planes;
* since ``sigma * nn = 4 - 2k``, the Metropolis rule collapses to three
  cases: always flip for k >= 2 (dE <= 0), flip with probability
  ``exp(-4 beta)`` for k == 1 and ``exp(-8 beta)`` for k == 0 — evaluated
  by comparing per-site uniforms against two precomputed thresholds and
  packing the comparison bits.

The thresholds are computed through the same float32 expression the
backend updaters use, so for identical per-site uniforms the bit-packed
chain is *bit-identical* to Algorithm 2 — the strongest cross-check the
test suite has for both implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.lattice import plain_to_quarters, quarters_to_plain
from ..rng.streams import PhiloxStream

__all__ = ["MultispinState", "MultispinUpdater", "pack_bits", "unpack_bits"]

_WORD = 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a (rows, cols) 0/1 array into (rows, cols/64) uint64 words.

    Bit ``j`` of word ``w`` holds column ``64*w + j`` (LSB-first /
    little-endian within the word), so shifting words left by one moves
    each bit to one column higher.  ``cols`` must be a multiple of 64;
    the row count is unconstrained.  Returns a fresh native-order
    uint64 array whose word *values* are host-independent — this is the
    word layout shared by :class:`MultispinState`, the first-class
    packed engine (:mod:`repro.core.packed`) and the ``packed``
    checkpoint payload.
    """
    rows, cols = bits.shape
    if cols % _WORD:
        raise ValueError(f"columns ({cols}) must be a multiple of {_WORD}")
    packed8 = np.packbits(bits.astype(np.uint8), axis=-1, bitorder="little")
    if not packed8.flags.c_contiguous:
        packed8 = np.ascontiguousarray(packed8)
    # Compose the 8 bytes little-endian explicitly: a bare np.uint64 view
    # would read them in *host* order, flipping which column each bit
    # addresses on big-endian machines.  astype(uint64) then normalises
    # to the native representation so downstream shifts stay fast; the
    # word *values* are host-independent.
    return packed8.view(np.dtype("<u8")).astype(np.uint64, copy=False)


def unpack_bits(words: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: (rows, cols/64) words → (rows, cols) 0/1.

    ``cols`` is the unpacked column count (it cannot be recovered from
    the word array alone when the last word is partially used, so the
    caller states it; the packed engine keeps it in ``quarter_shape``).
    Accepts words in any byte order (e.g. read from a foreign-endian
    checkpoint): values are re-encoded as little-endian bytes before the
    bit unpack, mirroring :func:`pack_bits`'s explicit ``'<u8'`` layout.
    Returns a fresh uint8 array.
    """
    rows = words.shape[0]
    le_words = np.ascontiguousarray(words).astype(np.dtype("<u8"), copy=False)
    flat = np.unpackbits(
        le_words.view(np.uint8), axis=-1, bitorder="little"
    )
    return flat[:, :cols].reshape(rows, cols)


def _prev_col(words: np.ndarray) -> np.ndarray:
    """Bit plane of the column-(j-1) neighbour, wrapping on the torus.

    In the little-endian bit order a left word shift moves every bit to
    one column *higher*, so the plane whose column-``j`` bit holds the
    old column ``j-1`` is ``words << 1`` with the top bit of the
    preceding word carried into bit 0.
    """
    left_word = np.roll(words, 1, axis=-1)
    return (words << np.uint64(1)) | (left_word >> np.uint64(_WORD - 1))


def _next_col(words: np.ndarray) -> np.ndarray:
    """Bit plane of the column-(j+1) neighbour, wrapping on the torus.

    Mirror of :func:`_prev_col`: ``words >> 1`` with bit 0 of the
    following word carried into the top bit.
    """
    right_word = np.roll(words, -1, axis=-1)
    return (words >> np.uint64(1)) | (right_word << np.uint64(_WORD - 1))


def _prev_row(words: np.ndarray) -> np.ndarray:
    """Bit plane of the row-(i-1) neighbour — a pure roll, no bit carries."""
    return np.roll(words, 1, axis=0)


def _next_row(words: np.ndarray) -> np.ndarray:
    """Bit plane of the row-(i+1) neighbour — a pure roll, no bit carries."""
    return np.roll(words, -1, axis=0)


def _disagreement_count_bits(
    d1: np.ndarray, d2: np.ndarray, d3: np.ndarray, d4: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bitwise full adders: per-bit k = d1+d2+d3+d4 as planes (bit0, bit1, bit2)."""
    s1, c1 = d1 ^ d2, d1 & d2
    s2, c2 = d3 ^ d4, d3 & d4
    low = s1 ^ s2
    lc = s1 & s2
    # k = 2*(c1 + c2 + lc) + low; the carry sum needs two bits.
    bit1 = c1 ^ c2 ^ lc
    bit2 = (c1 & c2) | (c1 & lc) | (c2 & lc)
    return low, bit1, bit2


@dataclass
class MultispinState:
    """Bit-packed compact lattice: four quarter word planes.

    Each plane is ``(rows/2, cols/128)`` uint64 in :func:`pack_bits`'s
    little-endian bit order (bit value 1 = spin +1); ``quarter_shape``
    is the unpacked ``(rows/2, cols/2)`` quarter geometry.  The same
    representation, with leading batch axes allowed, backs the
    first-class packed engine's
    :class:`~repro.core.packed.PackedState`.
    """

    w00: np.ndarray
    w01: np.ndarray
    w10: np.ndarray
    w11: np.ndarray
    quarter_shape: tuple[int, int]

    @classmethod
    def from_plain(cls, plain: np.ndarray) -> "MultispinState":
        """Pack a plain ``(rows, cols)`` ±1 lattice (width % 128 == 0)."""
        q00, q01, q10, q11 = plain_to_quarters(plain)
        bits = [(q > 0).astype(np.uint8) for q in (q00, q01, q10, q11)]
        return cls(
            w00=pack_bits(bits[0]),
            w01=pack_bits(bits[1]),
            w10=pack_bits(bits[2]),
            w11=pack_bits(bits[3]),
            quarter_shape=q00.shape,
        )

    def to_plain(self) -> np.ndarray:
        """Unpack back to a fresh plain ±1 float32 lattice."""
        cols = self.quarter_shape[1]
        quarters = [
            (2.0 * unpack_bits(w, cols).astype(np.float32)) - 1.0
            for w in (self.w00, self.w01, self.w10, self.w11)
        ]
        return quarters_to_plain(*quarters)

    def copy(self) -> "MultispinState":
        """Deep copy (fresh word arrays; ``update_color`` never mutates)."""
        return MultispinState(
            self.w00.copy(),
            self.w01.copy(),
            self.w10.copy(),
            self.w11.copy(),
            self.quarter_shape,
        )


class MultispinUpdater:
    """Checkerboard Metropolis on bit-packed spins.

    The quarter width must be a multiple of 64 (columns pack into whole
    words), i.e. the plain lattice width a multiple of 128 — the same
    alignment the TPU layout wants.
    """

    def __init__(self, beta: float) -> None:
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        # Thresholds through the exact float32 expression of the backend
        # path: exp(float32(-2 beta) * float32(sigma * nn)).
        factor = np.float32(-2.0 * beta)
        self.threshold_k1 = np.exp(factor * np.float32(2.0))  # sigma*nn = +2
        self.threshold_k0 = np.exp(factor * np.float32(4.0))  # sigma*nn = +4

    # -- phases ------------------------------------------------------------

    def _flip_words(
        self,
        spins: np.ndarray,
        neighbors: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        probs: np.ndarray,
    ) -> np.ndarray:
        """Flip mask for one packed quarter given its 4 neighbour planes.

        ``spins`` and ``neighbors`` are word planes of one quarter
        (same shape); ``probs`` are that quarter's per-site float32
        uniforms in *unpacked* ``quarter_shape``.  Returns a fresh word
        plane with bit set where the site flips; no argument is
        mutated.
        """
        d = [spins ^ n for n in neighbors]
        low, bit1, bit2 = _disagreement_count_bits(*d)
        k_ge_2 = bit1 | bit2
        k_eq_1 = ~bit1 & ~bit2 & low
        k_eq_0 = ~(bit1 | bit2 | low)
        r1 = pack_bits(probs < self.threshold_k1)
        r0 = pack_bits(probs < self.threshold_k0)
        return k_ge_2 | (k_eq_1 & r1) | (k_eq_0 & r0)

    def update_color(
        self,
        state: MultispinState,
        color: str,
        stream: PhiloxStream | None = None,
        probs: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> MultispinState:
        """One colour phase on the packed representation.

        ``probs`` are the two active quarters' uniforms ((q00, q11) for
        black, (q01, q10) for white) — drawn from ``stream`` when absent,
        in the same order as Algorithm 2, each shaped
        ``quarter_shape``.  Returns a *new* state (copy semantics, the
        passive planes shared by reference); the input state is never
        mutated — unlike the in-place first-class engine, which is
        bit-identical anyway because active quarters of a colour never
        read each other.
        """
        if color not in ("black", "white"):
            raise ValueError(f"color must be 'black' or 'white', got {color!r}")
        if probs is None:
            if stream is None:
                raise ValueError("either stream or probs must be provided")
            probs = (
                stream.uniform(state.quarter_shape),
                stream.uniform(state.quarter_shape),
            )
        p0, p1 = probs
        if p0.shape != state.quarter_shape or p1.shape != state.quarter_shape:
            raise ValueError(
                f"probs shapes {p0.shape}, {p1.shape} != quarter {state.quarter_shape}"
            )

        out = state.copy()
        if color == "black":
            # nn(q00) = s01 + s01.prev_col + s10 + s10.prev_row
            flips00 = self._flip_words(
                state.w00,
                (state.w01, _prev_col(state.w01), state.w10, _prev_row(state.w10)),
                p0,
            )
            # nn(q11) = s01 + s01.next_row + s10 + s10.next_col
            flips11 = self._flip_words(
                state.w11,
                (state.w01, _next_row(state.w01), state.w10, _next_col(state.w10)),
                p1,
            )
            out.w00 = state.w00 ^ flips00
            out.w11 = state.w11 ^ flips11
        else:
            # nn(q01) = s00 + s00.next_col + s11 + s11.prev_row
            flips01 = self._flip_words(
                state.w01,
                (state.w00, _next_col(state.w00), state.w11, _prev_row(state.w11)),
                p0,
            )
            # nn(q10) = s00 + s00.next_row + s11 + s11.prev_col
            flips10 = self._flip_words(
                state.w10,
                (state.w00, _next_row(state.w00), state.w11, _prev_col(state.w11)),
                p1,
            )
            out.w01 = state.w01 ^ flips01
            out.w10 = state.w10 ^ flips10
        return out

    def sweep(
        self,
        state: MultispinState,
        stream: PhiloxStream | None = None,
        probs_black: tuple[np.ndarray, np.ndarray] | None = None,
        probs_white: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> MultispinState:
        """One full lattice sweep (black then white), returning a new state."""
        state = self.update_color(state, "black", stream, probs_black)
        return self.update_color(state, "white", stream, probs_white)

    # -- uniform interface --------------------------------------------------

    @staticmethod
    def to_state(plain: np.ndarray) -> MultispinState:
        """Pack a plain ±1 lattice (the updaters' shared entry point)."""
        return MultispinState.from_plain(plain)

    @staticmethod
    def to_plain(state: MultispinState) -> np.ndarray:
        """Unpack to a fresh plain ±1 float32 lattice."""
        return state.to_plain()

    def sweep_plain(self, plain: np.ndarray, stream: PhiloxStream) -> np.ndarray:
        """Pack, sweep once, unpack — convenience for tests."""
        return self.to_plain(self.sweep(self.to_state(plain), stream))
