"""The ``BENCH_<name>.json`` benchmark-result schema and writer.

Every module under ``benchmarks/`` exposes a ``bench_payload()`` summary
(scalar metrics plus free-form metadata); ``benchmarks/emit.py`` — or the
module's own ``__main__`` — funnels those through :func:`write_bench_report`
so each run leaves a machine-readable ``BENCH_<name>.json`` behind.  CI
uploads the files as workflow artifacts, which is what makes the repo's
performance trajectory accumulate across commits instead of living only
in printed tables.

Schema contract (``repro.telemetry/bench-report/v1``): ``metrics`` maps
metric name to a number (units belong in the name — ``_seconds``,
``_flips_per_ns``, ``_ratio``); ``meta`` is free-form JSON context.
Additions are backward compatible, removals bump the version.
"""

from __future__ import annotations

import json
import os
import time

from .report import _jsonify

__all__ = [
    "BENCH_REPORT_SCHEMA",
    "bench_report",
    "validate_bench_report",
    "write_bench_report",
    "bench_filename",
]

#: Versioned schema identifier carried by every bench report.
BENCH_REPORT_SCHEMA = "repro.telemetry/bench-report/v1"

#: Environment variable overriding the default output directory.
BENCH_OUT_ENV = "BENCH_OUT_DIR"


def bench_filename(name: str) -> str:
    """The canonical artifact filename for a bench name."""
    return f"BENCH_{name}.json"


def bench_report(name: str, metrics: dict, meta: dict | None = None) -> dict:
    """Assemble (and validate) one bench result as a schema-v1 dict."""
    payload = {
        "schema": BENCH_REPORT_SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "metrics": _jsonify(metrics),
        "meta": _jsonify(meta or {}),
    }
    validate_bench_report(payload)
    return payload


def validate_bench_report(payload: dict) -> None:
    """Validate a decoded JSON dict against the v1 bench-report schema."""
    if not isinstance(payload, dict):
        raise ValueError("invalid bench report: top level must be an object")
    if payload.get("schema") != BENCH_REPORT_SCHEMA:
        raise ValueError(
            f"invalid bench report: schema must be {BENCH_REPORT_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("invalid bench report: name must be a non-empty string")
    if not isinstance(payload.get("created_unix"), (int, float)):
        raise ValueError("invalid bench report: created_unix must be a number")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("invalid bench report: metrics must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"invalid bench report: metrics[{key!r}] must be a number, "
                f"got {value!r}"
            )
    if not isinstance(payload.get("meta"), dict):
        raise ValueError("invalid bench report: meta must be an object")


def write_bench_report(
    name: str,
    metrics: dict,
    meta: dict | None = None,
    out_dir: str | None = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    The directory is resolved as ``out_dir`` argument, then the
    ``BENCH_OUT_DIR`` environment variable, then the current directory;
    it is created if missing.
    """
    directory = out_dir or os.environ.get(BENCH_OUT_ENV) or "."
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(name))
    payload = bench_report(name, metrics, meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
