"""Export profiler trace events as Chrome trace-event JSON (Perfetto).

The simulated :class:`~repro.tpu.profiler.Profiler` records
:class:`~repro.tpu.profiler.TraceEvent` tuples (category, name, start,
duration) on a modeled timeline when built with ``record_trace=True``.
This module turns those buffers into the Chrome trace-event format that
``chrome://tracing`` and https://ui.perfetto.dev load directly — the
software analogue of the paper's Fig. 6 trace-viewer screenshot.

Layout: the whole run is one process (``pid`` 0) and every simulated
TensorCore is one named thread track (``tid`` = core id), so a
distributed run renders as stacked per-core timelines with the halo
exchanges lining up across cores.  Event timestamps are the profiler's
modeled seconds converted to microseconds (the trace format's unit).
"""

from __future__ import annotations

import json

from ..tpu.profiler import Profiler

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1e6  # seconds -> trace-format microseconds


def _core_label(core_id: int, coords) -> str:
    if coords is not None:
        return f"core {core_id} {tuple(coords)}"
    return f"core {core_id}"


def _profilers_of(source) -> list[tuple[int, tuple | None, Profiler]]:
    """Normalise the accepted sources to (core_id, coords, profiler) rows.

    Accepts a single :class:`Profiler`, a sequence of profilers, a
    :class:`~repro.tpu.device.PodSlice`, or anything exposing a ``pod``
    attribute (e.g. :class:`~repro.core.distributed.DistributedIsing`).
    """
    pod = getattr(source, "pod", source)
    cores = getattr(pod, "cores", None)
    if cores is not None:
        return [(core.core_id, core.coords, core.profiler) for core in cores]
    if isinstance(source, Profiler):
        return [(0, None, source)]
    rows = []
    for idx, profiler in enumerate(source):
        if not isinstance(profiler, Profiler):
            raise TypeError(
                f"expected Profiler at index {idx}, got {type(profiler).__name__}"
            )
        rows.append((idx, None, profiler))
    if not rows:
        raise ValueError("no profilers to export")
    return rows


def _fault_spans_of(source) -> list[dict]:
    """Retry / fault spans recorded by an SPMD runtime, if any.

    Accepts anything exposing ``fault_log`` directly (an
    :class:`~repro.mesh.runtime.SPMDRuntime`) or through a ``runtime``
    attribute (:class:`~repro.core.distributed.DistributedIsing`).
    """
    runtime = getattr(source, "runtime", source)
    return list(getattr(runtime, "fault_log", ()) or ())


def _sched_spans_of(source) -> list[dict]:
    """Batch-advance spans recorded by a scheduler, if any.

    Accepts anything exposing ``sched_log``
    (:class:`~repro.sched.scheduler.Scheduler` records one span per
    batch advance when built with ``record_trace=True``).
    """
    return list(getattr(source, "sched_log", ()) or ())


def _overlap_spans_of(source) -> list[dict]:
    """Halo-overlap window spans recorded by an SPMD runtime, if any.

    Accepts anything exposing ``overlap_log`` directly (an
    :class:`~repro.mesh.runtime.SPMDRuntime`) or through a ``runtime``
    attribute (:class:`~repro.core.distributed.DistributedIsing` under
    the split-phase overlap schedule).
    """
    runtime = getattr(source, "runtime", source)
    return list(getattr(runtime, "overlap_log", ()) or ())


def _traced_spans_of(source) -> list[dict]:
    """Traced-executor replay spans, if any.

    Accepts anything exposing ``traced_log``
    (:class:`~repro.core.distributed.DistributedIsing` records one span
    per sweep when both ``record_trace`` and the traced executor are on).
    """
    return list(getattr(source, "traced_log", ()) or ())


def _serve_spans_of(source) -> list[dict]:
    """Front-door serve-layer spans, if any.

    Accepts anything exposing ``serve_log``
    (:class:`~repro.serve.app.ServeApp` merges request accept/shed
    spans with the autoscaler's scale events there).
    """
    return list(getattr(source, "serve_log", ()) or ())


def _tempering_spans_of(source) -> list[dict]:
    """Replica-exchange swap-round spans, if any.

    Accepts anything exposing ``swap_log``
    (:class:`~repro.core.tempering.TemperingEnsemble` records one span
    per swap round with attempted/accepted counts in ``args``).
    """
    return list(getattr(source, "swap_log", ()) or ())


def chrome_trace(source) -> dict:
    """Build a Chrome trace-event JSON object from recorded trace buffers.

    ``source`` may be a :class:`Profiler`, a list of profilers, a
    :class:`~repro.tpu.device.PodSlice` or a distributed simulation.  One
    thread track is emitted per core; each op becomes a complete ("X")
    event with its profiler category as the event category.  When the
    source carries an SPMD runtime with a non-empty ``fault_log`` (retry
    storms, injected delays), those spans render on an extra "mesh
    faults" track so degraded collectives line up against the per-core
    timelines; a scheduler source with a non-empty ``sched_log`` gets a
    "scheduler batches" track the same way, so batch advances line up
    against the device timelines they were booked on; a distributed run
    with tracing on (non-empty ``traced_log``) gets a "traced replay"
    track showing which sweeps ran as recorded programs; a run under the
    split-phase overlap schedule (non-empty ``overlap_log``) gets a
    "halo overlap" track showing each window's hidden vs exposed
    communication; a tempering run (non-empty ``swap_log``) gets a
    "tempering swaps" track with one span per swap round, attempted and
    accepted exchange counts in the span args; a serve front door with a
    non-empty ``serve_log`` gets a "serve front door" track with request
    accept/shed and autoscale events.  Raises if no trace
    events were recorded (build the profilers with ``record_trace=True``).
    """
    try:
        rows = _profilers_of(source)
    except (TypeError, ValueError):
        # Not a profiler-bearing source — a TemperingEnsemble carries
        # only its swap_log; export succeeds iff some span track is
        # non-empty (the total_events == 0 check below still raises).
        rows = []
    events: list[dict] = []
    total_events = 0
    for core_id, coords, profiler in rows:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": core_id,
                "args": {"name": _core_label(core_id, coords)},
            }
        )
        for ev in profiler.trace:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": ev.name or ev.category,
                    "cat": ev.category,
                    "pid": 0,
                    "tid": core_id,
                    "ts": ev.start * _US,
                    "dur": ev.duration * _US,
                }
            )
    next_tid = max((core_id for core_id, _, _ in rows), default=-1) + 1
    sched_spans = _sched_spans_of(source)
    if sched_spans:
        sched_tid = next_tid
        next_tid += 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": sched_tid,
                "args": {"name": "scheduler batches"},
            }
        )
        for span in sched_spans:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "sched",
                    "pid": 0,
                    "tid": sched_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": span.get("args", {}),
                }
            )
    traced_spans = _traced_spans_of(source)
    if traced_spans:
        traced_tid = next_tid
        next_tid += 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": traced_tid,
                "args": {"name": "traced replay"},
            }
        )
        for span in traced_spans:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "traced",
                    "pid": 0,
                    "tid": traced_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": span.get("args", {}),
                }
            )
    serve_spans = _serve_spans_of(source)
    if serve_spans:
        serve_tid = next_tid
        next_tid += 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": serve_tid,
                "args": {"name": "serve front door"},
            }
        )
        for span in serve_spans:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "serve",
                    "pid": 0,
                    "tid": serve_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": span.get("args", {}),
                }
            )
    tempering_spans = _tempering_spans_of(source)
    if tempering_spans:
        tempering_tid = next_tid
        next_tid += 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tempering_tid,
                "args": {"name": "tempering swaps"},
            }
        )
        for span in tempering_spans:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "tempering",
                    "pid": 0,
                    "tid": tempering_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": span.get("args", {}),
                }
            )
    overlap_spans = _overlap_spans_of(source)
    if overlap_spans:
        overlap_tid = next_tid
        next_tid += 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": overlap_tid,
                "args": {"name": "halo overlap"},
            }
        )
        for span in overlap_spans:
            total_events += 1
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "overlap",
                    "pid": 0,
                    "tid": overlap_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": {
                        "comm_seconds": span["comm_seconds"],
                        "hidden_seconds": span["hidden_seconds"],
                        "exposed_seconds": span["exposed_seconds"],
                        "permutes": span["permutes"],
                    },
                }
            )
    fault_spans = _fault_spans_of(source)
    if fault_spans:
        fault_tid = next_tid
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": fault_tid,
                "args": {"name": "mesh faults"},
            }
        )
        for span in fault_spans:
            events.append(
                {
                    "ph": "X",
                    "name": span["name"],
                    "cat": "fault",
                    "pid": 0,
                    "tid": fault_tid,
                    "ts": span["start"] * _US,
                    "dur": span["duration"] * _US,
                    "args": {"collective": span["collective"]},
                }
            )
    if total_events == 0:
        raise ValueError(
            "no trace events recorded — construct the profiler/pod with "
            "record_trace=True before running"
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry.trace",
            "timeline": "modeled TPU seconds (not wall clock)",
            "num_cores": len(rows),
            "num_fault_spans": len(fault_spans),
            "num_sched_spans": len(sched_spans),
            "num_serve_spans": len(serve_spans),
            "num_traced_spans": len(traced_spans),
            "num_tempering_spans": len(tempering_spans),
            "num_overlap_spans": len(overlap_spans),
        },
    }


def write_chrome_trace(path, source) -> dict:
    """Export ``source``'s trace to ``path`` and return the trace dict."""
    trace = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return trace
