"""A small in-process metrics registry: counters, gauges, histograms.

The registry is the low-level signal vocabulary of the telemetry layer —
every instrumented subsystem (simulation drivers, SPMD runtime, harness)
books named scalar signals here, and :class:`~repro.telemetry.report.RunReport`
serialises the whole registry into the run's JSON artifact.

Design constraints, in order:

1. **Zero overhead when telemetry is off.**  Instrumented code holds a
   telemetry handle that is ``None`` when disabled, so the disabled hot
   path costs one attribute load and one ``is None`` branch — no metric
   objects exist at all.  :data:`NULL_REGISTRY` additionally provides a
   no-op registry for call sites that prefer unconditional calls.
2. **No per-observation allocation.**  Histograms keep streaming moments
   (count / sum / min / max / sum of squares), not sample reservoirs, so
   observing a value never allocates or grows memory.
3. **Serializable.**  :meth:`MetricsRegistry.as_dict` is plain JSON data.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]


class Counter:
    """A monotonically increasing count (events, bytes, collectives)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways (counter position, B)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution (no sample storage).

    Keeps count, sum, min, max and the sum of squares, which is enough
    for mean and (population) standard deviation — the signals the bench
    trajectory and the run reports consume.  Observing is O(1) and
    allocation-free.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sumsq = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count == 0:
            return 0.0
        var = self._sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "std": self.std,
        }


class MetricsRegistry:
    """Named metrics, one instance per run.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name, so
    instrumented code does not coordinate registration order.  Asking for
    an existing name with a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{name: {type, ...fields}}``, sorted."""
        return {name: m.as_dict() for name, m in sorted(self._metrics.items())}


class _NullMetric:
    """Accepts every metric call and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """A no-op :class:`MetricsRegistry` for unconditionally-instrumented code.

    Every accessor returns a shared do-nothing metric; nothing is stored.
    """

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def as_dict(self) -> dict:
        return {}


#: Shared no-op registry (stateless, safe to share globally).
NULL_REGISTRY = NullRegistry()
