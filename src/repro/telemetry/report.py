"""Per-run telemetry recording and the versioned ``RunReport`` JSON schema.

A :class:`RunTelemetry` is the live recorder a simulation driver owns for
one run: it accumulates per-sweep wall times, sampled physics signals
(magnetization, energy, flip activity) and arbitrary named metrics.  When
the run ends, the driver's ``report()`` method folds in its static
configuration plus RNG / per-core performance state and returns a
:class:`RunReport` — a plain dataclass that serialises to the versioned
JSON schema documented in ``docs/observability.md``.

Schema stability contract: ``schema`` is ``"repro.telemetry/run-report/v1"``;
any field removal or meaning change bumps the version, additions do not.
:func:`validate_run_report` checks a decoded JSON dict against v1 without
any third-party schema library (the container ships numpy/scipy only).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .metrics import MetricsRegistry

__all__ = [
    "RUN_REPORT_SCHEMA",
    "RunTelemetry",
    "RunReport",
    "validate_run_report",
]

#: Versioned schema identifier carried by every run report.
RUN_REPORT_SCHEMA = "repro.telemetry/run-report/v1"

#: Run kinds a v1 report may carry.
RUN_KINDS = ("single", "ensemble", "distributed", "harness", "sched", "serve")


class RunTelemetry:
    """Opt-in per-run recorder attached to a simulation driver.

    Parameters
    ----------
    physics_interval:
        Sample physics signals (magnetization / energy / flip activity)
        every this many sweeps.  Physics sampling materialises the plain
        lattice, which costs a format conversion — raise the interval for
        long performance runs, or pass ``0`` to disable physics sampling
        entirely (sweep timing is always recorded).
    registry:
        Metrics registry to book signals into; a fresh one by default.

    The recorder never draws from the simulation's RNG stream and never
    mutates simulation state, so an instrumented chain is bit-identical
    to an uninstrumented one (enforced by ``tests/test_telemetry.py``).
    """

    def __init__(
        self,
        physics_interval: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if physics_interval < 0:
            raise ValueError(
                f"physics_interval must be >= 0, got {physics_interval}"
            )
        self.physics_interval = int(physics_interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sweep_wall = self.registry.histogram("sweep_wall_seconds")
        self._started_at = time.time()
        # Physics sampling state: previous sampled lattice(s) for flip
        # activity, plus first/last sampled observables for drift.
        self._prev_lattice: np.ndarray | None = None
        self._first_m: float | None = None
        self._first_e: float | None = None
        self._last_m: float | None = None
        self._last_e: float | None = None

    # -- recording hooks (called from instrumented sweep loops) -----------

    def record_sweep(self, wall_seconds: float) -> None:
        """Book one sweep's wall-clock duration."""
        self._sweep_wall.observe(wall_seconds)
        self.registry.counter("sweeps_total").inc()

    def wants_physics(self, sweeps_done: int) -> bool:
        """Whether the driver should sample physics after this sweep."""
        return (
            self.physics_interval > 0
            and sweeps_done % self.physics_interval == 0
        )

    def record_physics(
        self, lattices: np.ndarray, magnetizations: float, energies: float
    ) -> None:
        """Sample physics signals from the current plain lattice(s).

        ``lattices`` is the plain +/-1 state — ``(rows, cols)`` for a
        solo chain or ``(B, rows, cols)`` for an ensemble; flip activity
        is the fraction of sites that changed since the previous sample
        (averaged over chains), a cheap proxy for the Metropolis
        acceptance rate at the sampling cadence.
        """
        m = float(magnetizations)
        e = float(energies)
        self.registry.histogram("magnetization").observe(m)
        self.registry.histogram("energy_per_spin").observe(e)
        if self._first_m is None:
            self._first_m, self._first_e = m, e
        self._last_m, self._last_e = m, e
        if self._prev_lattice is not None:
            flipped = float(np.mean(self._prev_lattice != lattices))
            self.registry.histogram("flip_activity").observe(flipped)
        self._prev_lattice = np.asarray(lattices)

    # -- report assembly ---------------------------------------------------

    def physics_summary(self) -> dict:
        """The drift / activity block of the report."""
        reg = self.registry
        summary: dict[str, Any] = {}
        if self._first_m is not None:
            summary["magnetization_first"] = self._first_m
            summary["magnetization_last"] = self._last_m
            summary["magnetization_drift"] = self._last_m - self._first_m
            summary["energy_first"] = self._first_e
            summary["energy_last"] = self._last_e
            summary["energy_drift"] = self._last_e - self._first_e
        if "flip_activity" in reg:
            summary["flip_activity_mean"] = reg.histogram("flip_activity").mean
        return summary

    def sweep_summary(self) -> dict:
        """The wall-time block of the report."""
        h = self._sweep_wall
        return {
            "count": h.count,
            "wall_seconds_total": h.total,
            "wall_seconds_mean": h.mean,
            "wall_seconds_min": h.min if h.count else None,
            "wall_seconds_max": h.max if h.count else None,
            "wall_seconds_std": h.std,
        }

    def build_report(
        self,
        kind: str,
        run: dict,
        rng: dict | None = None,
        cores: list[dict] | None = None,
        breakdown: dict | None = None,
    ) -> "RunReport":
        """Assemble the final :class:`RunReport` (called by ``report()``)."""
        return RunReport(
            kind=kind,
            created_unix=self._started_at,
            run=run,
            sweeps=self.sweep_summary(),
            physics=self.physics_summary(),
            rng=rng if rng is not None else {},
            cores=cores if cores is not None else [],
            breakdown=breakdown if breakdown is not None else {},
            metrics=self.registry.as_dict(),
        )


@dataclass
class RunReport:
    """One run's machine-readable result (schema v1).

    Fields
    ------
    kind:
        One of :data:`RUN_KINDS`.
    run:
        Static configuration: updater, backend kind, dtype, shape,
        temperature(s), field, seed, block_shape, and for distributed
        runs core_grid / n_cores.
    sweeps:
        Wall-clock summary of the sweep loop.
    physics:
        Magnetization / energy first-last drift and mean flip activity.
    rng:
        Philox counter positions at the end of the run (``streams`` is a
        list of ``{seed, stream_id, counter}``).
    cores:
        Per-core performance split for distributed runs: modeled seconds
        per profiler category plus the compute-vs-communication fractions.
    breakdown:
        Pod-wide per-category time fractions (the Table 3 row for this
        run), empty for single-core runs without device accounting.
    metrics:
        Full metrics-registry dump (``{name: {type, ...}}``).
    """

    kind: str
    created_unix: float
    run: dict
    sweeps: dict
    physics: dict = field(default_factory=dict)
    rng: dict = field(default_factory=dict)
    cores: list = field(default_factory=list)
    breakdown: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    schema: str = RUN_REPORT_SCHEMA

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (validates against the v1 schema)."""
        payload = {
            "schema": self.schema,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "run": _jsonify(self.run),
            "sweeps": _jsonify(self.sweeps),
            "physics": _jsonify(self.physics),
            "rng": _jsonify(self.rng),
            "cores": _jsonify(self.cores),
            "breakdown": _jsonify(self.breakdown),
            "metrics": _jsonify(self.metrics),
        }
        validate_run_report(payload)
        return payload

    def write(self, path) -> None:
        """Serialise to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunReport":
        """Decode (and validate) a v1 JSON dict back into a RunReport."""
        validate_run_report(payload)
        return cls(
            kind=payload["kind"],
            created_unix=float(payload["created_unix"]),
            run=payload["run"],
            sweeps=payload["sweeps"],
            physics=payload.get("physics", {}),
            rng=payload.get("rng", {}),
            cores=payload.get("cores", []),
            breakdown=payload.get("breakdown", {}),
            metrics=payload.get("metrics", {}),
            schema=payload["schema"],
        )


def _jsonify(value):
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and (value != value):  # NaN -> null
        return None
    return value


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid run report: {message}")


def validate_run_report(payload: dict) -> None:
    """Validate a decoded JSON dict against the v1 run-report schema.

    Raises ``ValueError`` naming the offending field.  Deliberately
    dependency-free: the checks cover the structural contract consumers
    rely on (types, required keys, value ranges), not every field.
    """
    _expect(isinstance(payload, dict), "top level must be an object")
    _expect(
        payload.get("schema") == RUN_REPORT_SCHEMA,
        f"schema must be {RUN_REPORT_SCHEMA!r}, got {payload.get('schema')!r}",
    )
    _expect(payload.get("kind") in RUN_KINDS, f"kind must be one of {RUN_KINDS}")
    _expect(
        isinstance(payload.get("created_unix"), (int, float)),
        "created_unix must be a number",
    )
    for key in ("run", "sweeps", "physics", "rng", "breakdown", "metrics"):
        _expect(isinstance(payload.get(key), dict), f"{key} must be an object")
    _expect(isinstance(payload.get("cores"), list), "cores must be an array")

    sweeps = payload["sweeps"]
    _expect(
        isinstance(sweeps.get("count"), int) and sweeps["count"] >= 0,
        "sweeps.count must be a non-negative integer",
    )
    _expect(
        isinstance(sweeps.get("wall_seconds_total"), (int, float)),
        "sweeps.wall_seconds_total must be a number",
    )

    for i, core in enumerate(payload["cores"]):
        _expect(isinstance(core, dict), f"cores[{i}] must be an object")
        _expect(
            isinstance(core.get("core_id"), int),
            f"cores[{i}].core_id must be an integer",
        )
        _expect(
            isinstance(core.get("seconds"), dict),
            f"cores[{i}].seconds must be an object",
        )
        frac = core.get("communication_fraction")
        _expect(
            isinstance(frac, (int, float)) and 0.0 <= frac <= 1.0,
            f"cores[{i}].communication_fraction must be in [0, 1]",
        )

    for name, metric in payload["metrics"].items():
        _expect(
            isinstance(metric, dict) and "type" in metric,
            f"metrics[{name!r}] must be an object with a 'type'",
        )
        _expect(
            metric["type"] in ("counter", "gauge", "histogram"),
            f"metrics[{name!r}].type must be counter/gauge/histogram",
        )

    streams = payload["rng"].get("streams")
    if streams is not None:
        _expect(isinstance(streams, list), "rng.streams must be an array")
        for i, s in enumerate(streams):
            _expect(
                isinstance(s, dict)
                and all(isinstance(s.get(k), int) for k in ("seed", "stream_id", "counter")),
                f"rng.streams[{i}] must carry integer seed/stream_id/counter",
            )
