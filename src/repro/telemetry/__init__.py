"""Unified telemetry: metrics, run reports, trace export, bench artifacts.

The observability layer of the reproduction.  Everything here is opt-in:
simulation drivers accept a :class:`RunTelemetry` and pay nothing when it
is absent (the disabled hot path is a single ``is None`` branch — the
bit-identity and <2% overhead guarantees are enforced by
``tests/test_telemetry.py`` and ``benchmarks/bench_telemetry.py``).

Four pieces:

* :mod:`~repro.telemetry.metrics` — counters / gauges / histograms in a
  serialisable :class:`MetricsRegistry` (plus a no-op registry).
* :mod:`~repro.telemetry.report` — the :class:`RunTelemetry` recorder and
  the versioned :class:`RunReport` JSON schema every run can emit.
* :mod:`~repro.telemetry.trace` — Chrome trace-event export of the
  simulated profiler's timeline (one track per TensorCore; opens in
  ``chrome://tracing`` / Perfetto — the paper's Fig. 6 view).
* :mod:`~repro.telemetry.bench` — the ``BENCH_<name>.json`` schema the
  benchmark suite emits so performance accumulates across commits.

See ``docs/observability.md`` for the schema reference and examples.
"""

from .bench import (
    BENCH_REPORT_SCHEMA,
    bench_filename,
    bench_report,
    validate_bench_report,
    write_bench_report,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .report import (
    RUN_REPORT_SCHEMA,
    RunReport,
    RunTelemetry,
    validate_run_report,
)
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "BENCH_REPORT_SCHEMA",
    "bench_filename",
    "bench_report",
    "validate_bench_report",
    "write_bench_report",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "RunTelemetry",
    "validate_run_report",
    "chrome_trace",
    "write_chrome_trace",
]
