"""The tenant-facing surface of the simulation service.

:class:`Client` wraps one :class:`~repro.sched.scheduler.Scheduler` in
the ergonomics a tenant wants: submit configs (or keyword fields), get
:class:`~repro.sched.job.Job` handles back immediately, and collect
:class:`~repro.sched.job.JobResult` s — the client drains the scheduler
on demand, so callers never drive the step loop by hand.

Module-level :func:`submit` is the one-call path: it runs the job
through a process-wide default client and returns the result directly.
Because that client is shared, repeated identical submits are served
from its content-addressed cache — the service semantics, without
holding a handle.

This module is imported by :mod:`repro.api` (which re-exports
``submit``/``Client``), so ``repro.api`` is only imported lazily inside
function bodies here.
"""

from __future__ import annotations

import random
import threading

from .job import Job, JobResult
from .scheduler import Scheduler, SchedulerDrainingError, SchedulerSaturatedError

__all__ = ["Client", "submit", "default_client", "reset_default_client"]

#: Fallback backoff base when a saturation error carries no hint
#: (modeled seconds), and the per-attempt backoff ceiling.
_BACKOFF_FALLBACK_S = 0.01
_BACKOFF_CAP_S = 2.0
#: Bound on scheduler rounds one backoff wait may drive (safety valve).
_BACKOFF_MAX_STEPS = 4096


class Client:
    """A tenant handle on a scheduler (owned here or shared).

    Parameters
    ----------
    scheduler:
        Attach to an existing scheduler (multi-tenant sharing); when
        omitted a private one is built from the remaining keyword
        arguments (``n_devices``, ``max_batch``, ``quantum``,
        ``tenant_weights``, ``telemetry``, ``record_trace``, ...).
    tenant:
        Default fair-share bucket for this client's submissions.
    max_retries:
        Backpressure retries per submit.  A saturated scheduler's
        ``retry_after_s`` hint is honored with capped exponential
        backoff plus deterministic jitter — the client *absorbs* the
        backpressure by driving scheduler rounds (in-process, advancing
        the scheduler is how time passes) instead of failing straight
        through to the caller.  ``0`` restores fail-fast behaviour.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        tenant: str = "default",
        max_retries: int = 4,
        **scheduler_kwargs,
    ) -> None:
        if scheduler is not None and scheduler_kwargs:
            raise ValueError(
                "pass either an existing scheduler or constructor kwargs, "
                f"not both (got {sorted(scheduler_kwargs)})"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.scheduler = scheduler if scheduler is not None else Scheduler(
            **scheduler_kwargs
        )
        self.tenant = str(tenant)
        self.max_retries = int(max_retries)
        self.backoff_waits = 0
        # Deterministic jitter source: backoff spread without perturbing
        # any simulation RNG (reproducible retry schedules in tests).
        self._retry_rng = random.Random(0x5EEDED)

    def submit(
        self,
        config=None,
        sweeps: int = 100,
        priority: int = 0,
        tenant: str | None = None,
        **config_kwargs,
    ) -> Job:
        """Queue one job and return its handle (non-blocking).

        Pass a built :class:`~repro.api.SimulationConfig`, or config
        fields as keywords (``shape=64, temperature=2.0, ...``) and one
        is built here.  The handle may already be ``done`` when the
        result cache or an in-flight duplicate served it.
        """
        if config is None:
            from ..api import SimulationConfig

            config = SimulationConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError(
                "pass either a config or config fields, not both "
                f"(got {sorted(config_kwargs)})"
            )
        resolved_tenant = self.tenant if tenant is None else str(tenant)
        for attempt in range(self.max_retries + 1):
            try:
                return self.scheduler.submit(
                    config, sweeps, priority=priority, tenant=resolved_tenant
                )
            except SchedulerDrainingError:
                # Retrying a draining scheduler can never succeed.
                raise
            except SchedulerSaturatedError as exc:
                if attempt == self.max_retries:
                    raise
                self._absorb_backpressure(exc.retry_after_s, attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _absorb_backpressure(
        self, retry_after_s: float | None, attempt: int
    ) -> None:
        """Wait out one saturation: capped exponential backoff + jitter.

        The wait honors the scheduler's machine-readable hint: base
        delay = ``retry_after_s`` (fallback 10 ms) doubled per attempt,
        capped at 2 s, with +-25% deterministic jitter.  In-process,
        "waiting" means driving scheduler rounds — we step until the
        modeled clock advanced by the delay or a queue slot freed,
        whichever comes first.
        """
        base = retry_after_s if retry_after_s else _BACKOFF_FALLBACK_S
        delay = min(base * (2 ** attempt), _BACKOFF_CAP_S)
        delay *= 1.0 + 0.25 * (2.0 * self._retry_rng.random() - 1.0)
        self.backoff_waits += 1
        scheduler = self.scheduler
        start = scheduler.pool.makespan()
        for _ in range(_BACKOFF_MAX_STEPS):
            if scheduler.queue_depth < scheduler.max_queue:
                return
            if not scheduler.busy:
                return
            scheduler.step()
            if scheduler.pool.makespan() - start >= delay:
                return

    def result(self, job: Job) -> JobResult:
        """The job's result, draining the scheduler first if needed.

        Re-raises the original error for a failed job.
        """
        if not job.done:
            self.scheduler.drain()
        if job.state == "failed":
            raise job.error
        if job.result is None:
            raise RuntimeError(f"job {job.id} finished without a result")
        return job.result

    def run(self) -> None:
        """Drain the scheduler: run until every submitted job settles."""
        self.scheduler.drain()

    def stats(self) -> dict:
        return self.scheduler.stats()


#: Process-wide client backing the module-level :func:`submit`.
_default_client: Client | None = None
#: Guards the lazy init: concurrent HTTP handler threads (or tasks
#: hopping threads via an executor) must never race two default
#: schedulers into existence — the second would silently own a cold
#: cache and its own device pool.
_default_client_lock = threading.Lock()


def default_client() -> Client:
    """The shared process-wide client (built on first use, thread-safe)."""
    global _default_client
    if _default_client is None:
        with _default_client_lock:
            if _default_client is None:
                _default_client = Client()
    return _default_client


def reset_default_client() -> None:
    """Drop the shared client (tests; frees its cache and pool)."""
    global _default_client
    with _default_client_lock:
        _default_client = None


def submit(
    config=None,
    sweeps: int = 100,
    priority: int = 0,
    tenant: str = "default",
    **config_kwargs,
) -> JobResult:
    """Run one job through the shared service client and return its result.

    The synchronous one-call path: submits to the process-wide
    :func:`default_client`, drains, and returns the
    :class:`~repro.sched.job.JobResult`.  Identical repeat calls are
    served from the shared content-addressed cache.
    """
    client = default_client()
    job = client.submit(
        config, sweeps, priority=priority, tenant=tenant, **config_kwargs
    )
    return client.result(job)
