"""The tenant-facing surface of the simulation service.

:class:`Client` wraps one :class:`~repro.sched.scheduler.Scheduler` in
the ergonomics a tenant wants: submit configs (or keyword fields), get
:class:`~repro.sched.job.Job` handles back immediately, and collect
:class:`~repro.sched.job.JobResult` s — the client drains the scheduler
on demand, so callers never drive the step loop by hand.

Module-level :func:`submit` is the one-call path: it runs the job
through a process-wide default client and returns the result directly.
Because that client is shared, repeated identical submits are served
from its content-addressed cache — the service semantics, without
holding a handle.

This module is imported by :mod:`repro.api` (which re-exports
``submit``/``Client``), so ``repro.api`` is only imported lazily inside
function bodies here.
"""

from __future__ import annotations

from .job import Job, JobResult
from .scheduler import Scheduler

__all__ = ["Client", "submit", "default_client", "reset_default_client"]


class Client:
    """A tenant handle on a scheduler (owned here or shared).

    Parameters
    ----------
    scheduler:
        Attach to an existing scheduler (multi-tenant sharing); when
        omitted a private one is built from the remaining keyword
        arguments (``n_devices``, ``max_batch``, ``quantum``,
        ``tenant_weights``, ``telemetry``, ``record_trace``, ...).
    tenant:
        Default fair-share bucket for this client's submissions.
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        tenant: str = "default",
        **scheduler_kwargs,
    ) -> None:
        if scheduler is not None and scheduler_kwargs:
            raise ValueError(
                "pass either an existing scheduler or constructor kwargs, "
                f"not both (got {sorted(scheduler_kwargs)})"
            )
        self.scheduler = scheduler if scheduler is not None else Scheduler(
            **scheduler_kwargs
        )
        self.tenant = str(tenant)

    def submit(
        self,
        config=None,
        sweeps: int = 100,
        priority: int = 0,
        tenant: str | None = None,
        **config_kwargs,
    ) -> Job:
        """Queue one job and return its handle (non-blocking).

        Pass a built :class:`~repro.api.SimulationConfig`, or config
        fields as keywords (``shape=64, temperature=2.0, ...``) and one
        is built here.  The handle may already be ``done`` when the
        result cache or an in-flight duplicate served it.
        """
        if config is None:
            from ..api import SimulationConfig

            config = SimulationConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError(
                "pass either a config or config fields, not both "
                f"(got {sorted(config_kwargs)})"
            )
        return self.scheduler.submit(
            config,
            sweeps,
            priority=priority,
            tenant=self.tenant if tenant is None else str(tenant),
        )

    def result(self, job: Job) -> JobResult:
        """The job's result, draining the scheduler first if needed.

        Re-raises the original error for a failed job.
        """
        if not job.done:
            self.scheduler.drain()
        if job.state == "failed":
            raise job.error
        if job.result is None:
            raise RuntimeError(f"job {job.id} finished without a result")
        return job.result

    def run(self) -> None:
        """Drain the scheduler: run until every submitted job settles."""
        self.scheduler.drain()

    def stats(self) -> dict:
        return self.scheduler.stats()


#: Process-wide client backing the module-level :func:`submit`.
_default_client: Client | None = None


def default_client() -> Client:
    """The shared process-wide client (built on first use)."""
    global _default_client
    if _default_client is None:
        _default_client = Client()
    return _default_client


def reset_default_client() -> None:
    """Drop the shared client (tests; frees its cache and pool)."""
    global _default_client
    _default_client = None


def submit(
    config=None,
    sweeps: int = 100,
    priority: int = 0,
    tenant: str = "default",
    **config_kwargs,
) -> JobResult:
    """Run one job through the shared service client and return its result.

    The synchronous one-call path: submits to the process-wide
    :func:`default_client`, drains, and returns the
    :class:`~repro.sched.job.JobResult`.  Identical repeat calls are
    served from the shared content-addressed cache.
    """
    client = default_client()
    job = client.submit(
        config, sweeps, priority=priority, tenant=tenant, **config_kwargs
    )
    return client.result(job)
