"""The device pool: simulated TensorCores handed out under leases.

Rack-scale work is scheduled, not launched (Bisson et al.) — the
scheduler never touches a core directly.  It acquires a
:class:`DeviceLease` from the :class:`DevicePool`, binds the batch's
backend to the leased core, and must survive the lease being *revoked*
mid-run: :meth:`DevicePool.revoke` marks a core lost (operator drain, or
a mesh fault surfacing as
:class:`~repro.mesh.faults.CoreLostError`), and the next
:meth:`DevicePool.check` on that lease raises the same
:class:`~repro.mesh.faults.CoreLostError` the SPMD runtime uses — one
fault vocabulary across both runtimes.  The scheduler answers by
requeueing the batch's jobs from their last consistent snapshots.

All time on this pool is the *cost-model clock*: every op a leased
backend executes books modeled seconds into the core's profiler, so
``makespan()`` is the modeled wall-clock of a run (devices execute
concurrently) and ``total_busy()`` the serial-equivalent device time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mesh.faults import CoreLostError
from ..tpu.profiler import Profiler
from ..tpu.tensorcore import TensorCore

__all__ = ["DeviceLease", "Device", "DevicePool"]


@dataclass
class DeviceLease:
    """One holder's exclusive claim on a device until released/revoked."""

    device: "Device"
    holder: str
    active: bool = True


@dataclass
class Device:
    """One poolable simulated TensorCore plus its lease/loss bookkeeping."""

    core: TensorCore
    lost: bool = False
    lease: DeviceLease | None = field(default=None, repr=False)

    @property
    def core_id(self) -> int:
        return self.core.core_id

    @property
    def busy_seconds(self) -> float:
        """Modeled seconds booked on this core so far (cost-model clock)."""
        return self.core.profiler.total_seconds


class DevicePool:
    """A fixed fleet of simulated TensorCores with lease bookkeeping.

    Parameters
    ----------
    n_devices:
        Pool size; each device is an independent
        :class:`~repro.tpu.tensorcore.TensorCore` with its own profiler
        (and so its own modeled timeline).
    record_trace:
        Build the per-core profilers with trace recording on, so a
        scheduler run exports per-device op tracks to the Chrome trace.
    """

    def __init__(self, n_devices: int = 2, record_trace: bool = False) -> None:
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        self.devices = [
            Device(
                core=TensorCore(
                    core_id=i,
                    coords=(0, i),
                    profiler=Profiler(record_trace=record_trace),
                )
            )
            for i in range(n_devices)
        ]
        self.record_trace = bool(record_trace)

    # -- interop: telemetry.trace renders anything exposing ``cores`` -------

    @property
    def cores(self) -> "list[TensorCore]":
        """The simulated cores (the Chrome-trace exporter's contract)."""
        return [device.core for device in self.devices]

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def n_lost(self) -> int:
        return sum(1 for d in self.devices if d.lost)

    @property
    def n_available(self) -> int:
        return sum(1 for d in self.devices if d.lease is None and not d.lost)

    # -- leasing -------------------------------------------------------------

    def acquire(self, holder: str) -> DeviceLease | None:
        """Lease a free healthy device to ``holder``, or None if saturated."""
        for device in self.devices:
            if device.lease is None and not device.lost:
                lease = DeviceLease(device=device, holder=str(holder))
                device.lease = lease
                return lease
        return None

    def release(self, lease: DeviceLease) -> None:
        """Return a lease; idempotent for already-revoked leases."""
        if lease.active:
            lease.active = False
            if lease.device.lease is lease:
                lease.device.lease = None

    def revoke(self, core_id: int, sweep: int = 0) -> None:
        """Mark a device lost; its current lease (if any) is dead.

        The holder finds out at its next :meth:`check`, which raises
        :class:`~repro.mesh.faults.CoreLostError` — the same surface a
        mesh fault plan produces — and must requeue its work.
        """
        device = self._device(core_id)
        device.lost = True
        if device.lease is not None:
            device.lease.active = False
            device.lease = None

    def check(self, lease: DeviceLease) -> None:
        """Raise :class:`~repro.mesh.faults.CoreLostError` if revoked."""
        if lease.device.lost or not lease.active:
            raise CoreLostError(lease.device.core_id, 0, 0)

    # -- cost-model clock ----------------------------------------------------

    def makespan(self) -> float:
        """Modeled completion time: devices run concurrently, so the
        pool-level clock is the busiest device's timeline."""
        return max(d.busy_seconds for d in self.devices)

    def total_busy(self) -> float:
        """Serial-equivalent modeled device seconds (sum over devices)."""
        return sum(d.busy_seconds for d in self.devices)

    def _device(self, core_id: int) -> Device:
        for device in self.devices:
            if device.core_id == core_id:
                return device
        raise ValueError(f"no device with core_id {core_id} in the pool")
