"""Job specifications, results, and the job lifecycle state machine.

A :class:`JobSpec` is the immutable request a tenant submits: one
single-chain :class:`~repro.api.SimulationConfig` plus a sweep budget, a
priority and a tenant name.  The scheduler wraps each accepted spec in a
mutable :class:`Job` that walks the lifecycle::

    queued -> admitted -> running -> done
                 ^            |
                 |            +--> preempted -> queued   (snapshot + requeue)
                 |            +--> failed
                 +------------+

plus two shortcuts out of ``queued``: straight to ``done`` when the
content-addressed result cache (or an in-flight duplicate) already
serves the request, and straight to ``failed`` when the job's batch
cannot even be constructed.  Every transition is validated — an illegal
edge is a bug in the scheduler, not a state to limp through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["JobState", "JobSpec", "Job", "JobResult"]


class JobState:
    """The job lifecycle states (plain strings, compared by identity)."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    PREEMPTED = "preempted"
    DONE = "done"
    FAILED = "failed"


#: Legal lifecycle edges.  ``queued -> done`` is the cache/dedup shortcut,
#: ``queued -> failed`` the batch-construction failure shortcut;
#: ``admitted -> queued`` covers preemption of a batch that never advanced.
_TRANSITIONS: dict[str, tuple[str, ...]] = {
    JobState.QUEUED: (JobState.ADMITTED, JobState.DONE, JobState.FAILED),
    JobState.ADMITTED: (JobState.RUNNING, JobState.QUEUED),
    JobState.RUNNING: (JobState.PREEMPTED, JobState.DONE, JobState.FAILED),
    JobState.PREEMPTED: (JobState.QUEUED,),
    JobState.DONE: (),
    JobState.FAILED: (),
}

#: Distributed-only config fields a scheduler job must leave unset.
_UNSCHEDULABLE_FIELDS = ("grid", "fault_plan", "checkpoint_interval")


@dataclass(frozen=True)
class JobSpec:
    """One tenant's immutable simulation request.

    Parameters
    ----------
    config:
        A single-chain :class:`~repro.api.SimulationConfig`.  Distributed
        fields (``grid`` / ``fault_plan`` / ``checkpoint_interval`` /
        ``record_trace``) and ``telemetry`` must be unset — the scheduler
        owns the device pool and the instrumentation.  ``backend`` must
        be ``None`` / ``"numpy"`` / ``"tpu"`` (a pre-built
        :class:`~repro.backend.base.Backend` instance cannot be
        content-addressed for the result cache).
    sweeps:
        Number of full lattice sweeps to run before measuring.
    priority:
        Larger runs earlier and may preempt smaller (default 0).
    tenant:
        Fair-share accounting bucket (default "default").
    """

    config: "object"
    sweeps: int
    priority: int = 0
    tenant: str = "default"

    def __post_init__(self) -> None:
        from ..api import SimulationConfig

        if not isinstance(self.config, SimulationConfig):
            raise TypeError(
                f"config must be a SimulationConfig, got "
                f"{type(self.config).__name__}"
            )
        if self.sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {self.sweeps}")
        for name in _UNSCHEDULABLE_FIELDS:
            if getattr(self.config, name) is not None:
                raise ValueError(
                    f"scheduler jobs must leave config.{name} unset "
                    f"(got {getattr(self.config, name)!r}); the scheduler "
                    "owns the device pool and telemetry"
                )
        if getattr(self.config, "ladder", None) is not None:
            raise ValueError(
                "scheduler jobs must leave config.ladder unset; a "
                "replica-exchange ladder is one coupled simulation — "
                "run it with repro.tempering(config) instead"
            )
        if self.config.record_trace:
            raise ValueError(
                "scheduler jobs must leave config.record_trace unset; "
                "pass record_trace to the Scheduler instead"
            )
        if self.config.telemetry not in (None, False):
            raise ValueError(
                "scheduler jobs must leave config.telemetry unset; the "
                "scheduler owns instrumentation (pass telemetry= to the "
                "Scheduler)"
            )
        if (
            self.config.updater == "masked_conv"
            and self.config.block_shape is not None
        ):
            raise ValueError(
                "masked_conv does not take a block_shape "
                f"(got {self.config.block_shape!r})"
            )
        if not (
            self.config.backend is None
            or self.config.backend in ("numpy", "tpu")
        ):
            raise ValueError(
                "scheduler jobs need a nameable backend ('numpy', 'tpu' or "
                f"None), got {self.config.backend!r} — pre-built Backend "
                "instances cannot be content-addressed for the result cache"
            )


@dataclass
class JobResult:
    """Observables of one completed job.

    ``lattice`` is the final plain +/-1 state; ``magnetization`` and
    ``energy`` are the standard per-spin observables of that state.  A
    cached serving returns a fresh copy of the same arrays, so results
    are bit-identical however they were produced (batched, cached, or
    preempted-and-resumed).
    """

    magnetization: float
    energy: float
    sweeps: int
    lattice: np.ndarray

    def copy(self) -> "JobResult":
        """An aliasing-free copy (what the cache hands out)."""
        return JobResult(
            magnetization=self.magnetization,
            energy=self.energy,
            sweeps=self.sweeps,
            lattice=np.array(self.lattice, copy=True),
        )


class Job:
    """A submitted :class:`JobSpec` walking the lifecycle state machine.

    The scheduler mutates jobs through :meth:`transition` only, so every
    lifecycle edge is checked against the documented machine.  ``result``
    is set exactly when the job reaches ``done``; ``error`` when it
    reaches ``failed``.  ``from_cache`` marks results served without
    touching the device pool; ``preemptions`` counts how many times the
    job was snapshotted off a device.
    """

    def __init__(self, job_id: int, spec: JobSpec, cache_key: str) -> None:
        self.id = int(job_id)
        self.spec = spec
        self.cache_key = cache_key
        self.state = JobState.QUEUED
        self.sweeps_done = 0
        self.result: JobResult | None = None
        self.error: Exception | None = None
        self.from_cache = False
        self.preemptions = 0
        #: Continuation token: ``{"lattice", "stream", "sweeps_done"}``
        #: captured at admission and refreshed by preemption snapshots,
        #: so a revoked lease replays from the last consistent point.
        self.resume: dict | None = None
        self.submitted_tick: int | None = None
        self.finished_tick: int | None = None

    def __repr__(self) -> str:
        return (
            f"Job(id={self.id}, state={self.state!r}, "
            f"sweeps={self.sweeps_done}/{self.spec.sweeps}, "
            f"priority={self.spec.priority}, tenant={self.spec.tenant!r})"
        )

    @property
    def done(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def sweeps_remaining(self) -> int:
        return self.spec.sweeps - self.sweeps_done

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, enforcing the lifecycle machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal job transition {self.state!r} -> {new_state!r} "
                f"for job {self.id}"
            )
        self.state = new_state
