"""Content-addressed result cache keyed by canonical config hashes.

Two requests that describe the *same trajectory* must hash to the same
key, however they were spelled.  :func:`canonical_cache_key` therefore
normalises every trajectory-determining field of a frozen
:class:`~repro.api.SimulationConfig` before hashing:

* ``temperature=2.0`` and ``beta=0.5`` resolve to one temperature, and
  floats are hashed by their exact bit pattern (``float.hex``), never by
  a printed decimal;
* ``shape=64`` and ``shape=(64, 64)`` normalise to one tuple, and an
  unset ``block_shape`` resolves to the updater's default decomposition
  (so spelling the default explicitly still hits);
* an explicit initial lattice hashes by content (shape + bytes);
* the nested specs serialise deterministically (fields in sorted-key
  order, floats by bit pattern): ``field=0.1`` and
  ``model=ModelSpec(field=0.1)`` hash via one
  :attr:`~repro.api.SimulationConfig.resolved_model`, and a
  :class:`~repro.api.LadderSpec` hashes by its
  :attr:`~repro.api.LadderSpec.resolved_betas` — ``betas=`` and
  ``temperatures=`` spellings of the same ladder dedup to one entry.

Fields that provably do **not** change the trajectory are excluded, so
equivalent requests share cache entries across them: the backend kind
("numpy" vs "tpu" execute bit-identically for a given dtype — the
equivalence suite enforces it) and the fused-engine selection (fused and
elementwise sweeps are bit-identical by construction).  ``dtype`` *is*
part of the key: bfloat16 rounding changes trajectories.

The cache itself is a bounded LRU mapping key -> :class:`~repro.sched.job.JobResult`;
hits hand out aliasing-free copies so a caller mutating its result can
never corrupt later servings.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from ..core.config import default_block_shape
from ..tpu.dtypes import resolve_dtype
from .job import JobResult

__all__ = ["CACHE_KEY_SCHEMA", "canonical_cache_key", "ResultCache"]

#: Versioned prefix folded into every key; bump when key semantics change
#: (a stale persisted key can then never alias a new-scheme entry).
#: v2: the flat ``field`` part became a full model token (couplings kind,
#: disorder seed, field bits, lattice) and a ladder token was added.
CACHE_KEY_SCHEMA = "repro.sched/cache-key/v2"


def _normalized_shape(shape) -> tuple[int, int]:
    if isinstance(shape, (int, np.integer)):
        return (int(shape), int(shape))
    rows, cols = shape
    return (int(rows), int(cols))


def _resolved_block_shape(config, shape: tuple[int, int]):
    """The effective block decomposition, via the drivers' shared default.

    Delegating to :func:`~repro.core.config.default_block_shape` (rather
    than re-spelling the per-updater defaults here) guarantees an unset
    ``block_shape`` and its explicit default hash to the same key.
    """
    if config.block_shape is not None:
        rows, cols = config.block_shape
        return (int(rows), int(cols))
    return default_block_shape(config.updater, shape)


def _initial_token(initial) -> str:
    """Canonical token for the initial state ('hot'/'cold' or array hash)."""
    if isinstance(initial, str):
        return f"named:{initial}"
    plain = np.ascontiguousarray(np.asarray(initial, dtype=np.float32))
    digest = hashlib.sha256(plain.tobytes()).hexdigest()
    return f"array:{plain.shape}:{digest}"


def _spec_token(name: str, fields: dict) -> str:
    """Deterministic serialisation of one nested spec: sorted-key pairs.

    Floats render by exact bit pattern (``float.hex``) so tokens are
    spelling-invariant; sequences render element-wise in given order
    (ladder order is adjacency order — trajectory-relevant).
    """
    def render(value):
        if isinstance(value, float):
            return value.hex()
        if isinstance(value, tuple):
            return "(" + ",".join(render(v) for v in value) + ")"
        return str(value)

    pairs = ",".join(f"{k}={render(fields[k])}" for k in sorted(fields))
    return f"{name}({pairs})"


def _model_token(config) -> str:
    """Canonical token of the resolved model spec (flat-kwarg invariant)."""
    model = config.resolved_model
    return _spec_token(
        "model",
        {
            "couplings": model.couplings,
            "disorder_seed": int(model.disorder_seed),
            "field": float(model.field),
            "lattice": model.lattice,
        },
    )


def _ladder_token(config) -> str:
    """Canonical token of the ladder spec (betas/temperatures invariant)."""
    ladder = getattr(config, "ladder", None)
    if ladder is None:
        return "none"
    return _spec_token(
        "ladder",
        {
            "betas": tuple(float(b) for b in ladder.resolved_betas),
            "n_replicas": int(ladder.n_replicas),
            "swap_interval": int(ladder.swap_interval),
        },
    )


def canonical_cache_key(config, sweeps: int) -> str:
    """The content address of (config, seed, sweep count) as a sha256 hex.

    Includes every trajectory-determining field (shape, temperature,
    model spec — couplings/disorder seed/field/lattice — ladder spec,
    updater, dtype, block decomposition, initial state, seed, sweep
    count); excludes execution details that are bit-identical by
    contract (backend kind, fused selection, telemetry).
    """
    shape = _normalized_shape(config.shape)
    parts = (
        CACHE_KEY_SCHEMA,
        f"shape={shape}",
        f"temperature={float(config.resolved_temperature).hex()}",
        f"model={_model_token(config)}",
        f"ladder={_ladder_token(config)}",
        f"updater={config.updater}",
        f"dtype={resolve_dtype(config.dtype).name}",
        f"block_shape={_resolved_block_shape(config, shape)}",
        f"initial={_initial_token(config.initial)}",
        f"seed={int(config.seed)}",
        f"sweeps={int(sweeps)}",
    )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded LRU of canonical-key -> :class:`~repro.sched.job.JobResult`.

    ``get`` returns an aliasing-free copy (or None) and books the
    hit/miss; ``put`` inserts and evicts least-recently-used entries
    beyond ``max_entries``.  Purely in-process and synchronous — the
    scheduler consults it before any job touches the device pool.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> JobResult | None:
        """The cached result for ``key`` (a fresh copy), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.copy()

    def put(self, key: str, result: JobResult) -> None:
        """Insert (a defensive copy of) ``result`` under ``key``."""
        self._entries[key] = result.copy()
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def export(self) -> "list[tuple[str, JobResult]]":
        """Snapshot every entry as ``(key, result copy)`` pairs, LRU first.

        The scale-down flush: a draining shard exports its index so the
        routing layer can :meth:`absorb` the entries into the surviving
        shards and keep content-addressed hit rates intact.  Bookkeeping
        (hits/misses) is untouched.
        """
        return [(key, result.copy()) for key, result in self._entries.items()]

    def absorb(self, entries: "list[tuple[str, JobResult]]") -> None:
        """Merge exported entries, keeping any result already present.

        Existing entries win (they are at least as recent); new keys are
        inserted through :meth:`put`, so the LRU bound and eviction
        accounting apply as usual.
        """
        for key, result in entries:
            if key not in self._entries:
                self.put(key, result)

    def stats(self) -> dict:
        """Hit/miss/eviction counts plus current occupancy."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
