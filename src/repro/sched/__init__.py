"""repro.sched — a multi-tenant simulation service over the device pool.

Where :mod:`repro.api` runs one configuration at a time, this package
turns *many* users' :class:`~repro.api.SimulationConfig`-keyed requests
into batched, cached, schedulable work:

* :mod:`repro.sched.job` — the JobSpec / Job state machine
  (``queued -> admitted -> running -> preempted | done | failed``);
* :mod:`repro.sched.cache` — a content-addressed result cache keyed by
  the canonical hash of (config, seed, sweep count);
* :mod:`repro.sched.coalesce` — groups compatible jobs into one
  vectorized :class:`~repro.core.ensemble.EnsembleSimulation`;
* :mod:`repro.sched.pool` — simulated TensorCore leases with revocation;
* :mod:`repro.sched.scheduler` — continuous batching, weighted-fair
  admission, priority preemption via checkpoint/v2 snapshots;
* :mod:`repro.sched.client` — the ``Client`` / ``submit()`` front door
  re-exported through :mod:`repro.api`.

Every serving path — batched, cached, preempted-and-resumed — returns
observables bit-identical to a solo ``repro.simulate()`` run of the same
config and seed.  See ``docs/scheduler.md``.
"""

from .cache import ResultCache, canonical_cache_key
from .client import Client, submit
from .coalesce import BatchPlan, Coalescer, compat_key
from .job import Job, JobResult, JobSpec, JobState
from .pool import DeviceLease, DevicePool
from .scheduler import Scheduler, SchedulerDrainingError, SchedulerSaturatedError

__all__ = [
    "BatchPlan",
    "Client",
    "Coalescer",
    "DeviceLease",
    "DevicePool",
    "Job",
    "JobResult",
    "JobSpec",
    "JobState",
    "ResultCache",
    "Scheduler",
    "SchedulerDrainingError",
    "SchedulerSaturatedError",
    "canonical_cache_key",
    "compat_key",
    "submit",
]
