"""The multi-tenant scheduler: continuous batching over leased devices.

One :class:`Scheduler` owns a :class:`~repro.sched.pool.DevicePool`, a
:class:`~repro.sched.cache.ResultCache` and a queue of
:class:`~repro.sched.job.Job` s, and serves them with three throughput
levers stacked on top of each other:

1. **Content-addressed caching** — a submit whose canonical key is
   already cached (or already in flight) never touches the pool; the
   duplicate is served bit-identically from the first computation.
2. **Continuous batching** — compatible jobs (same
   :func:`~repro.sched.coalesce.compat_key`) ride one vectorized
   :class:`~repro.core.ensemble.EnsembleSimulation`; jobs join and leave
   the batch at sweep boundaries while sibling chains' Philox streams
   advance undisturbed, so every chain stays bit-identical to its solo
   ``repro.simulate()`` run.
3. **Priority preemption + weighted-fair admission** — queued work is
   ordered by (priority desc, tenant fair-share, arrival); a
   higher-priority arrival snapshots the lowest-priority running batch
   through its ``checkpoint/v2`` envelope and requeues its jobs, which
   later resume bit-identically from their tokens.  A revoked device
   lease (:class:`~repro.mesh.faults.CoreLostError`) requeues the same
   way, from the last consistent token.

Scheduling is cooperative and synchronous: :meth:`Scheduler.step` runs
one admission + advance round, :meth:`Scheduler.drain` runs rounds until
the system is idle.  All device time is the modeled cost-model clock
(see :mod:`repro.sched.pool`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..backend.numpy_backend import NumpyBackend
from ..backend.tpu_backend import TPUBackend
from ..core.couplings import BondCouplings, bond_energy_per_spin
from ..core.ensemble import EnsembleSimulation
from ..core.lattice import cold_lattice, random_lattice, validate_spins
from ..mesh.faults import CoreLostError
from ..observables.energy import energy_per_spin
from ..observables.magnetization import magnetization
from ..rng.streams import PhiloxStream
from ..telemetry.report import RunReport, RunTelemetry
from ..tpu.dtypes import resolve_dtype
from .cache import ResultCache, _normalized_shape, canonical_cache_key
from .coalesce import Coalescer, compat_key
from .job import Job, JobResult, JobSpec, JobState
from .pool import DevicePool

__all__ = ["Scheduler", "SchedulerSaturatedError", "SchedulerDrainingError"]

#: Bounds on the modeled :meth:`Scheduler.modeled_retry_after` hint, and
#: the fallback when no service history exists yet (modeled seconds).
_RETRY_AFTER_MIN_S = 1e-3
_RETRY_AFTER_MAX_S = 60.0
_RETRY_AFTER_DEFAULT_S = 0.05


class SchedulerSaturatedError(RuntimeError):
    """Backpressure: the admission queue is full; resubmit later.

    ``retry_after_s`` is the machine-readable hint derived from the
    modeled queue drain rate (see :meth:`Scheduler.modeled_retry_after`):
    how long, in modeled seconds, a caller should wait before its retry
    has a fair chance of finding a free queue slot.  The serve layer
    surfaces it as an HTTP 429 ``Retry-After``; the in-process
    :class:`~repro.sched.client.Client` honors it with capped
    exponential backoff.
    """

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SchedulerDrainingError(SchedulerSaturatedError):
    """The scheduler is shutting down and admits no new work.

    Raised by :meth:`Scheduler.submit` after :meth:`Scheduler.shutdown`
    stopped admission.  A subclass of :class:`SchedulerSaturatedError`
    so shard routers treat both as "this shard cannot take the job" —
    but retrying the *same* scheduler is pointless, so the client's
    backoff loop re-raises it immediately instead of retrying.
    """


@dataclass
class _Batch:
    """One leased ensemble in flight; ``jobs`` is parallel to chain order."""

    key: tuple
    lease: "object"
    ensemble: EnsembleSimulation
    jobs: "list[Job]" = field(default_factory=list)

    @property
    def priority(self) -> int:
        return max(job.spec.priority for job in self.jobs)

    @property
    def n_chains(self) -> int:
        return len(self.jobs)


class Scheduler:
    """Serve SimulationConfig-keyed jobs with batching, caching, preemption.

    Parameters
    ----------
    pool:
        Device pool to lease from; built fresh (``n_devices``,
        ``record_trace``) when omitted.
    n_devices:
        Pool size when building the pool here.
    max_batch:
        Maximum chains per coalesced ensemble.
    quantum:
        Sweeps a batch advances per scheduling round — the preemption
        granularity (a preempting job waits at most one quantum).
    max_queue:
        Admission-queue bound; :meth:`submit` beyond it raises
        :class:`SchedulerSaturatedError` (backpressure, not silent drop).
    tenant_weights:
        ``{tenant: weight}`` for weighted-fair admission; unlisted
        tenants weigh 1.  Service is metered in sweeps x sites.
    cache:
        Result cache to consult/fill; a fresh 1024-entry LRU by default.
    telemetry:
        Optional :class:`~repro.telemetry.report.RunTelemetry`.  When
        None (default) the scheduling loop takes the uninstrumented
        path — plain counters only, no timing calls.
    record_trace:
        Record per-device op traces plus scheduler batch spans for
        Chrome-trace export (:func:`repro.telemetry.trace.chrome_trace`).
    """

    def __init__(
        self,
        pool: DevicePool | None = None,
        n_devices: int = 2,
        max_batch: int = 16,
        quantum: int = 8,
        max_queue: int = 256,
        tenant_weights: "dict[str, float] | None" = None,
        cache: ResultCache | None = None,
        telemetry: RunTelemetry | None = None,
        record_trace: bool = False,
    ) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.pool = pool if pool is not None else DevicePool(
            n_devices, record_trace=record_trace
        )
        self.cache = cache if cache is not None else ResultCache()
        self.coalescer = Coalescer(max_batch)
        self.max_batch = int(max_batch)
        self.quantum = int(quantum)
        self.max_queue = int(max_queue)
        self.tenant_weights = dict(tenant_weights or {})
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight must be positive, got {tenant!r}: {weight}"
                )
        self.telemetry = telemetry
        self._record_spans = bool(record_trace) or self.pool.record_trace

        self.jobs: "dict[int, Job]" = {}
        self._queue: "list[Job]" = []
        self._batches: "list[_Batch]" = []
        self._inflight: "dict[str, Job]" = {}
        self._followers: "dict[int, list[Job]]" = {}
        self._tenant_service: "dict[str, float]" = {}
        self._next_job_id = 0
        self._next_batch_id = 0

        self.ticks = 0
        self.service_done = 0.0
        self._admitting = True
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.preemptions = 0
        self.lease_revocations = 0
        self.batches_started = 0
        self.max_occupancy = 0
        #: Chrome-trace spans (one per batch advance) when tracing is on.
        self.sched_log: "list[dict]" = []
        #: The checkpoint/v2 envelope of the most recent preemption
        #: snapshot (introspection / tests).
        self.last_preemption_checkpoint: dict | None = None

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        config,
        sweeps: int,
        priority: int = 0,
        tenant: str = "default",
    ) -> Job:
        """Accept one job (or serve it straight from cache/in-flight dedup).

        Returns the :class:`~repro.sched.job.Job` handle — already
        ``done`` (``from_cache``) when the canonical key was cached.  An
        identical request currently queued or running is *deduplicated*:
        the new job becomes a follower of the in-flight primary and is
        served from the cache the moment the primary completes.  Raises
        :class:`SchedulerSaturatedError` when the queue is full.
        """
        if not self._admitting:
            raise SchedulerDrainingError(
                "scheduler is draining (shutdown() was called); submit to "
                "another shard",
                retry_after_s=self.modeled_retry_after(),
            )
        spec = JobSpec(
            config=config, sweeps=int(sweeps), priority=int(priority),
            tenant=str(tenant),
        )
        key = canonical_cache_key(spec.config, spec.sweeps)
        job = Job(self._next_job_id, spec, key)
        job.submitted_tick = self.ticks

        cached = self.cache.get(key)
        if cached is not None:
            self._register(job)
            job.result = cached
            job.from_cache = True
            self._finish(job)
            return job

        primary = self._inflight.get(key)
        if primary is not None and not primary.done:
            self._register(job)
            self._followers.setdefault(primary.id, []).append(job)
            return job

        if len(self._queue) >= self.max_queue:
            raise SchedulerSaturatedError(
                f"admission queue full ({self.max_queue} jobs); "
                "drain or resubmit later",
                retry_after_s=self.modeled_retry_after(),
            )
        self._register(job)
        self._inflight[key] = job
        self._queue.append(job)
        return job

    def _register(self, job: Job) -> None:
        self._next_job_id += 1
        self.jobs[job.id] = job
        self.jobs_submitted += 1

    def _finish(self, job: Job) -> None:
        job.transition(JobState.DONE)
        job.finished_tick = self.ticks
        self.jobs_completed += 1

    # -- the scheduling loop -------------------------------------------------

    def step(self) -> bool:
        """One scheduling round: admit, advance every batch one quantum,
        retire finished jobs.  Returns True while work remains."""
        self.ticks += 1
        self._admit()
        for batch in list(self._batches):
            self._advance(batch)
        telemetry = self.telemetry
        if telemetry is not None:
            registry = telemetry.registry
            registry.gauge("sched_queue_depth").set(len(self._queue))
            registry.gauge("sched_active_batches").set(len(self._batches))
        return bool(self._queue or self._batches)

    def drain(self, max_ticks: int = 100_000) -> None:
        """Run scheduling rounds until idle (all jobs done or failed)."""
        while self._queue or self._batches:
            if (
                self._queue
                and not self._batches
                and self.pool.n_lost == self.pool.n_devices
            ):
                raise RuntimeError(
                    "device pool exhausted: every lease was revoked and "
                    f"{len(self._queue)} job(s) remain queued"
                )
            if self.ticks >= max_ticks:
                raise RuntimeError(
                    f"scheduler did not drain within {max_ticks} ticks"
                )
            self.step()

    # -- serve-layer hooks: backpressure, drain/handoff, introspection -------

    @property
    def admitting(self) -> bool:
        """False once :meth:`shutdown` stopped admission."""
        return self._admitting

    @property
    def queue_depth(self) -> int:
        """Jobs waiting in the admission queue right now."""
        return len(self._queue)

    @property
    def running_chains(self) -> int:
        """Chains currently placed on leased devices."""
        return sum(batch.n_chains for batch in self._batches)

    @property
    def busy(self) -> bool:
        """True while any work is queued or running."""
        return bool(self._queue or self._batches)

    def is_duplicate(self, cache_key: str) -> bool:
        """Would a submit of ``cache_key`` be served without queue space?

        True when the key is already cached, or an identical primary is
        queued/running here (the duplicate would become a follower).
        Shard routers use this to keep duplicates on their affine shard
        even when its queue is full — dedup never costs a queue slot.
        """
        if cache_key in self.cache:
            return True
        primary = self._inflight.get(cache_key)
        return primary is not None and not primary.done

    def _sites_of(self, job: Job) -> int:
        rows, cols = _normalized_shape(job.spec.config.shape)
        return rows * cols

    def outstanding_service(self) -> float:
        """Unfinished service (sweeps x sites) across queued + running jobs."""
        total = 0.0
        for job in self._queue:
            total += job.sweeps_remaining * self._sites_of(job)
        for batch in self._batches:
            for job in batch.jobs:
                total += job.sweeps_remaining * self._sites_of(job)
        return total

    def modeled_retry_after(self) -> float:
        """Modeled seconds until a resubmit has a fair chance of admission.

        Derived from the modeled queue drain rate: the outstanding
        service (sweeps x sites still owed to queued and running jobs)
        divided by the observed service rate on the cost-model clock
        (service done so far over the pool makespan).  Before any
        history exists the hint falls back to a small constant.  The
        estimate is clamped to [1 ms, 60 s].
        """
        outstanding = self.outstanding_service()
        if outstanding <= 0:
            return _RETRY_AFTER_MIN_S
        makespan = self.pool.makespan()
        if self.service_done > 0 and makespan > 0:
            estimate = outstanding / (self.service_done / makespan)
        else:
            estimate = _RETRY_AFTER_DEFAULT_S
        return min(max(estimate, _RETRY_AFTER_MIN_S), _RETRY_AFTER_MAX_S)

    def shutdown(self, finish: bool = False) -> dict:
        """Graceful-shutdown path: stop admitting, then drain or hand off.

        With ``finish=True`` every accepted job runs to completion (or
        failure) before returning.  With ``finish=False`` (the serve
        layer's scale-down path) running batches are *checkpointed*
        through their ``checkpoint/v2`` snapshots — exactly the
        preemption machinery — and every unfinished job is returned as a
        handoff token another scheduler re-admits bit-identically via
        :meth:`adopt`.  Either way the content-addressed result cache is
        flushed into the return value so the routing layer can re-home
        hot entries and keep hit rates intact.

        Returns ``{"jobs": [token, ...], "cache": [(key, result), ...]}``;
        ``jobs`` is empty when ``finish=True`` succeeded.  Each token
        carries ``spec`` / ``cache_key`` / ``resume`` / ``sweeps_done``
        / ``priority`` plus the original ``job`` handle (so a front door
        can re-point its references after the move).
        """
        self._admitting = False
        if finish:
            self.drain()
        else:
            for batch in list(self._batches):
                self._preempt(batch)
        handoff = []
        for job in self._queue:
            handoff.append(self._handoff_token(job))
        for followers in self._followers.values():
            for job in followers:
                handoff.append(self._handoff_token(job))
        self._queue.clear()
        self._followers.clear()
        self._inflight.clear()
        return {"jobs": handoff, "cache": self.cache.export()}

    def _handoff_token(self, job: Job) -> dict:
        return {
            "spec": job.spec,
            "cache_key": job.cache_key,
            "resume": job.resume,
            "sweeps_done": int(job.sweeps_done),
            "preemptions": int(job.preemptions),
            "job": job,
        }

    def adopt(self, token: dict) -> Job:
        """Re-admit one handed-off job from another scheduler's shutdown.

        The token's ``resume`` snapshot (lattice + Philox state) makes
        the adopted job continue bit-identically from where the old
        shard checkpointed it.  Adoption deliberately bypasses the
        ``max_queue`` bound — scale-down must never lose an accepted job
        — but still dedups against this scheduler's cache and in-flight
        primaries.
        """
        if not self._admitting:
            raise SchedulerDrainingError(
                "cannot adopt into a draining scheduler",
                retry_after_s=self.modeled_retry_after(),
            )
        spec: JobSpec = token["spec"]
        key = token["cache_key"]
        job = Job(self._next_job_id, spec, key)
        job.submitted_tick = self.ticks
        cached = self.cache.get(key)
        if cached is not None:
            self._register(job)
            job.result = cached
            job.from_cache = True
            self._finish(job)
            return job
        primary = self._inflight.get(key)
        if primary is not None and not primary.done:
            self._register(job)
            self._followers.setdefault(primary.id, []).append(job)
            return job
        job.resume = token.get("resume")
        job.sweeps_done = int(token.get("sweeps_done", 0))
        job.preemptions = int(token.get("preemptions", 0))
        self._register(job)
        self._inflight[key] = job
        self._queue.append(job)
        return job

    def peek(self, job: Job) -> dict:
        """Incremental observables of a job without disturbing its run.

        Always reports ``state`` and ``sweeps_done``; when the job is
        running in a batch (or already done) the current lattice's
        ``magnetization`` and ``energy`` ride along — the serve layer
        streams these as progress frames.  Reading never touches the
        chain's RNG or state, so streamed runs stay bit-identical.
        """
        info: dict = {"state": job.state, "sweeps_done": int(job.sweeps_done)}
        if job.result is not None:
            info["magnetization"] = job.result.magnetization
            info["energy"] = job.result.energy
            return info
        for batch in self._batches:
            if job in batch.jobs:
                index = batch.jobs.index(job)
                lattice = np.asarray(
                    batch.ensemble.lattices[index], dtype=np.float32
                )
                couplings = batch.ensemble.couplings
                if couplings is not None:
                    energy = bond_energy_per_spin(lattice, couplings)
                else:
                    energy = energy_per_spin(lattice)
                info["magnetization"] = float(magnetization(lattice))
                info["energy"] = float(energy)
                break
        return info

    # -- admission -----------------------------------------------------------

    def _rank(self, job: Job) -> tuple:
        weight = self.tenant_weights.get(job.spec.tenant, 1.0)
        served = self._tenant_service.get(job.spec.tenant, 0.0)
        return (-job.spec.priority, served / weight, job.id)

    def _admit(self) -> None:
        if not self._queue:
            return
        ranked = sorted(self._queue, key=self._rank)
        # 1. Continuous batching: join running batches with spare capacity.
        for job in ranked:
            key = compat_key(job.spec.config)
            for batch in self._batches:
                if batch.key == key and batch.n_chains < self.max_batch:
                    self._join(batch, job)
                    break
        ranked = [job for job in ranked if job.state == JobState.QUEUED]
        # 2. Start new batches while the pool has free devices.
        while ranked and self.pool.n_available > 0:
            plan = self.coalescer.plan(ranked)[0]
            self._start(plan.key, plan.jobs)
            ranked = [job for job in ranked if job.state == JobState.QUEUED]
        # 3. Priority preemption: one victim per round, strictly lower
        #    priority than the best job still waiting.
        if ranked and self._batches:
            top = ranked[0]
            victim = min(self._batches, key=lambda b: b.priority)
            if victim.priority < top.spec.priority:
                self._preempt(victim)
                plan = self.coalescer.plan(ranked)[0]
                self._start(plan.key, plan.jobs)
        self._queue = [job for job in self._queue if job.state == JobState.QUEUED]

    def _chain_of(self, job: Job):
        """(temperature, stream, lattice) for (re)admitting one job.

        Fresh jobs derive their initial state exactly as a solo
        :class:`~repro.core.simulation.IsingSimulation` would — same
        stream, same hot-start draw — and record their admission token;
        preempted jobs resume from their snapshot token.
        """
        config = job.spec.config
        shape = _normalized_shape(config.shape)
        if job.resume is not None:
            stream = PhiloxStream.from_state(job.resume["stream"])
            lattice = np.asarray(job.resume["lattice"], dtype=np.float32)
            return config.resolved_temperature, stream, lattice
        stream = PhiloxStream(config.seed, 0)
        initial = config.initial
        if isinstance(initial, str):
            if initial == "hot":
                lattice = random_lattice(shape, stream)
            elif initial == "cold":
                lattice = cold_lattice(shape)
            else:
                raise ValueError(
                    f"initial must be 'hot', 'cold' or an array, got {initial!r}"
                )
        else:
            lattice = np.asarray(initial, dtype=np.float32)
            if lattice.shape != shape:
                raise ValueError(
                    f"initial lattice shape {lattice.shape} != {shape}"
                )
            validate_spins(lattice)
        job.resume = {
            "lattice": np.array(lattice, copy=True),
            "stream": stream.state(),
            "sweeps_done": job.sweeps_done,
        }
        return config.resolved_temperature, stream, lattice

    def _backend_for(self, key: tuple, lease) -> "NumpyBackend | TPUBackend":
        _, _, dtype_name, backend_kind, _, _, _, _ = key
        dtype = resolve_dtype(dtype_name)
        if backend_kind == "tpu":
            return TPUBackend(lease.device.core, dtype)
        return NumpyBackend(dtype)

    def _fail_jobs(self, jobs: "list[Job]", exc: Exception) -> None:
        for job in jobs:
            job.error = exc
            job.transition(JobState.FAILED)
            job.finished_tick = self.ticks
            self.jobs_failed += 1
            self._inflight.pop(job.cache_key, None)
            self._promote_followers(job)

    def _join(self, batch: _Batch, job: Job) -> None:
        try:
            temperature, stream, lattice = self._chain_of(job)
            batch.ensemble.add_chain(temperature, stream, lattice)
        except Exception as exc:  # noqa: BLE001 — this job is unbuildable
            self._fail_jobs([job], exc)
            return
        batch.jobs.append(job)
        job.transition(JobState.ADMITTED)
        self.max_occupancy = max(self.max_occupancy, batch.n_chains)
        if self.telemetry is not None:
            self.telemetry.registry.counter("sched_batch_joins").inc()

    def _start(self, key: tuple, jobs: "list[Job]") -> None:
        lease = self.pool.acquire(f"batch-{self._next_batch_id}")
        if lease is None:
            raise RuntimeError("no free device (caller must check the pool)")
        self._next_batch_id += 1
        shape, updater, _, _, _, block_shape, fused, traced = key
        try:
            chains = [self._chain_of(job) for job in jobs]
            # Equal compat keys guarantee equal model tokens, so the
            # first job's resolved model speaks for the whole batch.
            model = jobs[0].spec.config.resolved_model
            couplings = None
            if model.couplings != "ferro":
                couplings = BondCouplings.generate(
                    model.couplings, shape, model.disorder_seed
                )
            ensemble = EnsembleSimulation.from_chains(
                shape,
                chains,
                updater=updater,
                backend=self._backend_for(key, lease),
                block_shape=block_shape,
                field=model.field,
                couplings=couplings,
                fused=fused,
                traced=traced,
            )
        except Exception as exc:  # noqa: BLE001 — the plan is unbuildable
            self.pool.release(lease)
            self._fail_jobs(jobs, exc)
            return
        batch = _Batch(key=key, lease=lease, ensemble=ensemble, jobs=list(jobs))
        self._batches.append(batch)
        for job in jobs:
            job.transition(JobState.ADMITTED)
        self.batches_started += 1
        self.max_occupancy = max(self.max_occupancy, batch.n_chains)
        if self.telemetry is not None:
            self.telemetry.registry.histogram("sched_batch_occupancy").observe(
                batch.n_chains
            )

    # -- advancing, retiring, preempting -------------------------------------

    def _advance(self, batch: _Batch) -> None:
        n_sweeps = min(
            self.quantum, min(job.sweeps_remaining for job in batch.jobs)
        )
        telemetry = self.telemetry
        try:
            self.pool.check(batch.lease)
            for job in batch.jobs:
                if job.state == JobState.ADMITTED:
                    job.transition(JobState.RUNNING)
            clock0 = batch.lease.device.busy_seconds
            wall0 = perf_counter() if telemetry is not None else 0.0
            batch.ensemble.run(n_sweeps)
        except CoreLostError:
            self._requeue_lost(batch)
            return
        except Exception as exc:  # noqa: BLE001 — batch-wide failure
            self._fail(batch, exc)
            return
        clock1 = batch.lease.device.busy_seconds
        rows, cols = batch.ensemble.shape
        service = n_sweeps * rows * cols
        self.service_done += service * batch.n_chains
        for job in batch.jobs:
            job.sweeps_done += n_sweeps
            tenant = job.spec.tenant
            self._tenant_service[tenant] = (
                self._tenant_service.get(tenant, 0.0) + service
            )
        if self._record_spans:
            self.sched_log.append(
                {
                    "name": f"batch x{batch.n_chains} {batch.ensemble.updater_name}",
                    "start": clock0,
                    "duration": clock1 - clock0,
                    "tid_hint": batch.lease.device.core_id,
                    "args": {
                        "jobs": [job.id for job in batch.jobs],
                        "n_sweeps": n_sweeps,
                        "device": batch.lease.device.core_id,
                    },
                }
            )
        if telemetry is not None:
            registry = telemetry.registry
            registry.histogram("sched_advance_wall_seconds").observe(
                perf_counter() - wall0
            )
            registry.histogram("sched_batch_occupancy").observe(batch.n_chains)
            registry.counter("sched_sweeps_total").inc(
                n_sweeps * batch.n_chains
            )
        self._retire(batch)

    def _retire(self, batch: _Batch) -> None:
        finished = [
            (index, job)
            for index, job in enumerate(batch.jobs)
            if job.sweeps_remaining == 0
        ]
        if not finished:
            return
        plains = batch.ensemble.lattices
        couplings = batch.ensemble.couplings
        for index, job in finished:
            lattice = np.array(plains[index], copy=True)
            if couplings is not None:
                energy = bond_energy_per_spin(lattice, couplings)
            else:
                energy = energy_per_spin(lattice)
            job.result = JobResult(
                magnetization=float(magnetization(lattice)),
                energy=float(energy),
                sweeps=job.spec.sweeps,
                lattice=lattice,
            )
            self.cache.put(job.cache_key, job.result)
            self._inflight.pop(job.cache_key, None)
            self._finish(job)
            self._serve_followers(job)
        if len(finished) == batch.n_chains:
            # The whole batch retired at once (the common case when jobs
            # share a sweep budget): drop it wholesale instead of paying
            # one updater rebuild per leaving chain.
            batch.jobs.clear()
        else:
            for index, _ in sorted(finished, key=lambda pair: -pair[0]):
                batch.jobs.pop(index)
                batch.ensemble.remove_chain(index)
        if not batch.jobs:
            self.pool.release(batch.lease)
            self._batches.remove(batch)

    def _serve_followers(self, primary: Job) -> None:
        for follower in self._followers.pop(primary.id, []):
            follower.result = self.cache.get(follower.cache_key)
            follower.from_cache = True
            self._finish(follower)

    def _preempt(self, batch: _Batch) -> None:
        """Snapshot a batch through checkpoint/v2 and requeue its jobs."""
        snapshot = batch.ensemble.state_dict()
        self.last_preemption_checkpoint = snapshot
        stream_state = snapshot["stream"]
        lattices = np.asarray(snapshot["lattices"], dtype=np.float32)
        for index, job in enumerate(batch.jobs):
            job.resume = {
                "lattice": np.array(lattices[index], copy=True),
                "stream": {
                    "seed": stream_state["seeds"][index],
                    "stream_id": stream_state["stream_ids"][index],
                    "counter": stream_state["counters"][index],
                },
                "sweeps_done": job.sweeps_done,
            }
            if job.state == JobState.RUNNING:
                job.transition(JobState.PREEMPTED)
            job.transition(JobState.QUEUED)
            job.preemptions += 1
            self._queue.append(job)
        self.pool.release(batch.lease)
        self._batches.remove(batch)
        self.preemptions += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("sched_preemptions").inc()

    def _requeue_lost(self, batch: _Batch) -> None:
        """A revoked lease: roll jobs back to their last tokens, requeue."""
        self.pool.release(batch.lease)
        self._batches.remove(batch)
        for job in batch.jobs:
            job.sweeps_done = int(job.resume["sweeps_done"])
            if job.state == JobState.RUNNING:
                job.transition(JobState.PREEMPTED)
            job.transition(JobState.QUEUED)
            self._queue.append(job)
        self.lease_revocations += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("sched_lease_revocations").inc()

    def _fail(self, batch: _Batch, exc: Exception) -> None:
        self.pool.release(batch.lease)
        self._batches.remove(batch)
        self._fail_jobs(batch.jobs, exc)

    def _promote_followers(self, failed: Job) -> None:
        """A failed primary's duplicates are innocent: requeue the first
        as the new primary, keep the rest following it."""
        followers = self._followers.pop(failed.id, [])
        if not followers:
            return
        primary, rest = followers[0], followers[1:]
        self._inflight[primary.cache_key] = primary
        self._queue.append(primary)
        if rest:
            self._followers[primary.id] = rest

    # -- introspection -------------------------------------------------------

    @property
    def pod(self) -> DevicePool:
        """The device pool, under the Chrome-trace exporter's contract
        (:func:`repro.telemetry.trace.chrome_trace` reads ``source.pod``)."""
        return self.pool

    def stats(self) -> dict:
        """Machine-readable scheduler counters (always available)."""
        return {
            "ticks": self.ticks,
            "admitting": self._admitting,
            "outstanding_service": self.outstanding_service(),
            "service_done": self.service_done,
            "retry_after_s": self.modeled_retry_after(),
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "queued": len(self._queue),
                "running": sum(batch.n_chains for batch in self._batches),
            },
            "cache": self.cache.stats(),
            "batches": {
                "started": self.batches_started,
                "active": len(self._batches),
                "max_occupancy": self.max_occupancy,
            },
            "preemptions": self.preemptions,
            "lease_revocations": self.lease_revocations,
            "tenants": dict(self._tenant_service),
            "pool": {
                "n_devices": self.pool.n_devices,
                "n_lost": self.pool.n_lost,
                "makespan_seconds": self.pool.makespan(),
                "total_busy_seconds": self.pool.total_busy(),
            },
        }

    def report(self) -> RunReport:
        """Build the scheduler's :class:`~repro.telemetry.report.RunReport`.

        Requires an attached telemetry recorder.  Queue depth, batch
        occupancy, cache hit rate and preemption counts land as gauges
        next to the histograms recorded during the run.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "no telemetry attached; construct with "
                "Scheduler(..., telemetry=RunTelemetry())"
            )
        stats = self.stats()
        registry = self.telemetry.registry
        registry.gauge("sched_queue_depth").set(stats["jobs"]["queued"])
        registry.gauge("sched_jobs_submitted").set(self.jobs_submitted)
        registry.gauge("sched_jobs_completed").set(self.jobs_completed)
        registry.gauge("sched_jobs_failed").set(self.jobs_failed)
        registry.gauge("sched_cache_hits").set(self.cache.hits)
        registry.gauge("sched_cache_misses").set(self.cache.misses)
        registry.gauge("sched_preemptions_total").set(self.preemptions)
        registry.gauge("sched_lease_revocations_total").set(
            self.lease_revocations
        )
        registry.gauge("sched_batches_started").set(self.batches_started)
        registry.gauge("sched_max_occupancy").set(self.max_occupancy)
        registry.gauge("sched_makespan_modeled_seconds").set(
            stats["pool"]["makespan_seconds"]
        )
        return self.telemetry.build_report(
            kind="sched",
            run={
                "n_devices": self.pool.n_devices,
                "max_batch": self.max_batch,
                "quantum": self.quantum,
                "max_queue": self.max_queue,
                "tenant_weights": dict(self.tenant_weights),
                "tenants_served": stats["tenants"],
                "ticks": self.ticks,
            },
        )
