"""Grouping compatible jobs into one vectorized ensemble batch.

Chains of an :class:`~repro.core.ensemble.EnsembleSimulation` share one
geometry, one updater, one backend (and dtype), one field and one block
decomposition — per-chain freedom is exactly (temperature, seed, stream,
lattice).  :func:`compat_key` captures that contract: jobs with equal
keys can ride one batched sweep; everything per-chain stays per-job.

The GPU Ising literature (Romero et al.) gets its throughput from
batching many independent lattices per update; :class:`Coalescer` is the
admission-side half of that here — it takes the ready queue in scheduling
order and cuts it into :class:`BatchPlan` groups of at most ``max_batch``
compatible jobs, preserving the scheduler's priority/fairness order
within and across groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tpu.dtypes import resolve_dtype
from .cache import _ladder_token, _model_token, _normalized_shape, _resolved_block_shape
from .job import Job

__all__ = ["compat_key", "BatchPlan", "Coalescer"]


def compat_key(config) -> tuple:
    """The batching-compatibility key of a config.

    Two jobs coalesce into one ensemble iff their keys are equal:
    (shape, updater, dtype, backend kind, (model token, ladder token),
    resolved block decomposition, resolved fused flag, resolved traced
    flag).  The model token folds couplings kind, disorder seed, field
    bits and lattice through :attr:`~repro.api.SimulationConfig.resolved_model`,
    so a flat ``field=`` and its ``ModelSpec`` spelling coalesce;
    distinct disorder realisations never share a batch (chains of one
    ensemble share one bond configuration).  Temperature and seed are
    deliberately absent — they are per-chain inside a batch.  Batched
    jobs with tracing on all ride one recorded sweep program per engine
    key.
    """
    shape = _normalized_shape(config.shape)
    backend = "tpu" if config.backend == "tpu" else "numpy"
    fused = config.fused
    if fused == "auto":
        fused = backend == "numpy"
    traced = getattr(config, "traced", "auto")
    if traced == "auto":
        traced = bool(fused)
    return (
        shape,
        config.updater,
        resolve_dtype(config.dtype).name,
        backend,
        (_model_token(config), _ladder_token(config)),
        _resolved_block_shape(config, shape),
        bool(fused),
        bool(traced),
    )


@dataclass
class BatchPlan:
    """One planned ensemble: a compat key and the jobs riding it."""

    key: tuple
    jobs: "list[Job]"

    @property
    def n_chains(self) -> int:
        return len(self.jobs)


class Coalescer:
    """Cuts a scheduling-ordered job list into compatible batch plans."""

    def __init__(self, max_batch: int = 16) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)

    def plan(self, jobs: "list[Job]") -> "list[BatchPlan]":
        """Group ``jobs`` by compat key into plans of <= ``max_batch``.

        Input order is the scheduler's admission order; output plans are
        ordered by their highest-ranked member, and jobs inside a plan
        keep their relative order.  A job joins the first open plan with
        its key; full plans are closed and a new one opened, so one hot
        key can produce several plans.
        """
        plans: "list[BatchPlan]" = []
        open_by_key: dict = {}
        for job in jobs:
            key = compat_key(job.spec.config)
            plan = open_by_key.get(key)
            if plan is None:
                plan = BatchPlan(key=key, jobs=[])
                plans.append(plan)
                open_by_key[key] = plan
            plan.jobs.append(job)
            if len(plan.jobs) >= self.max_batch:
                del open_by_key[key]
        return plans
