"""repro — a reproduction of "High Performance Monte Carlo Simulation of
Ising Model on TPU Clusters" (Yang et al., SC 2019) on a simulated TPU
substrate.

The package implements the paper's checkerboard Metropolis algorithms
(naive, compact, conv), a software TPU v3 (bfloat16 numerics, MXU/VPU/HBM
cost model, profiler), a 2D toroidal mesh with ``collective_permute`` and
a lockstep SPMD runtime, counter-based Philox RNG, exact physics oracles,
the GPU-style baselines, and a harness that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    import repro
    cfg = repro.SimulationConfig(shape=128, temperature=2.0, seed=0)
    sim = repro.simulate(cfg)
    result = sim.sample(n_samples=1000, burn_in=200)
    print(result.abs_m, result.u4)

The :mod:`repro.api` surface (``SimulationConfig`` + ``simulate`` /
``ensemble`` / ``distributed`` / ``load``) is the stable entry point; the
underlying classes remain importable for power users.  Fault tolerance
(fault injection, checkpoint/restart, elastic degrade) is documented in
``docs/fault_tolerance.md``.
"""

from .api import (
    Client,
    LadderSpec,
    ModelSpec,
    SimulationConfig,
    deprecated_kwargs,
    distributed,
    ensemble,
    load,
    simulate,
    submit,
    tempering,
)
from .core import (
    BondCouplings,
    CheckerboardUpdater,
    CompactLattice,
    CompactUpdater,
    ConvUpdater,
    DistributedIsing,
    EnsembleSimulation,
    Ising3D,
    IsingSimulation,
    MaskedConvUpdater,
    TemperingEnsemble,
    run_temperature_scan,
)
from .backend import Backend, NumpyBackend
from .observables import (
    T_CRITICAL,
    binder_cumulant,
    critical_temperature,
    energy_per_spin,
    magnetization,
    replica_overlap,
    spin_glass_binder,
    spontaneous_magnetization,
)
from .mesh import FaultEvent, FaultPlan, RetryPolicy
from .rng import PhiloxStream
from .sched import Scheduler
from .telemetry import (
    MetricsRegistry,
    RunReport,
    RunTelemetry,
    chrome_trace,
    write_chrome_trace,
)
from .tpu import BFLOAT16, FLOAT32, PACKED, PodSlice, TPU_V3, TensorCore
from .version import __version__

__all__ = [
    "ModelSpec",
    "LadderSpec",
    "SimulationConfig",
    "simulate",
    "ensemble",
    "tempering",
    "distributed",
    "load",
    "submit",
    "Client",
    "Scheduler",
    "deprecated_kwargs",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "BondCouplings",
    "CheckerboardUpdater",
    "CompactLattice",
    "CompactUpdater",
    "ConvUpdater",
    "DistributedIsing",
    "EnsembleSimulation",
    "Ising3D",
    "IsingSimulation",
    "MaskedConvUpdater",
    "TemperingEnsemble",
    "run_temperature_scan",
    "Backend",
    "NumpyBackend",
    "T_CRITICAL",
    "binder_cumulant",
    "critical_temperature",
    "energy_per_spin",
    "magnetization",
    "replica_overlap",
    "spin_glass_binder",
    "spontaneous_magnetization",
    "PhiloxStream",
    "MetricsRegistry",
    "RunReport",
    "RunTelemetry",
    "chrome_trace",
    "write_chrome_trace",
    "BFLOAT16",
    "FLOAT32",
    "PACKED",
    "PodSlice",
    "TPU_V3",
    "TensorCore",
    "__version__",
]
