"""The blessed, stable entry point: one config, three factories, one loader.

The three simulation drivers (:class:`~repro.core.simulation.IsingSimulation`,
:class:`~repro.core.ensemble.EnsembleSimulation`,
:class:`~repro.core.distributed.DistributedIsing`) grew three divergent
kwarg lists.  This module puts one validated, frozen
:class:`SimulationConfig` in front of all of them:

    >>> import repro
    >>> cfg = repro.SimulationConfig(shape=128, temperature=2.0, seed=7)
    >>> sim = repro.simulate(cfg)                     # single chain
    >>> chains = repro.ensemble(cfg, n_chains=8)      # vectorized ensemble
    >>> pod = repro.distributed(replace(cfg, grid=(2, 2)))  # SPMD pod run

and one loader that dispatches any ``checkpoint/v2`` envelope (or legacy
v1 dict, with a :class:`DeprecationWarning`) back to the class that wrote
it:

    >>> sim2 = repro.load(sim.state_dict())

Renamed keyword arguments stay usable for one release through
:func:`deprecated_kwargs`, which warns once per call site name and
forwards to the new spelling.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, replace

import numpy as np

from .backend.base import Backend
from .backend.numpy_backend import NumpyBackend
from .core.config import (
    CHECKPOINT_SCHEMA,
    backend_from_checkpoint,
    checkpoint_kind,
    resolve_fused,
    resolve_overlap,
    resolve_traced,
)
from .core.distributed import DistributedIsing
from .core.ensemble import EnsembleSimulation
from .core.simulation import IsingSimulation
from .mesh.faults import FaultPlan
from .sched.client import Client, submit
from .telemetry.report import RunTelemetry
from .tpu.dtypes import DType, resolve_dtype

__all__ = [
    "SimulationConfig",
    "simulate",
    "ensemble",
    "distributed",
    "load",
    "submit",
    "Client",
    "deprecated_kwargs",
]

_UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")

# (qualified function name, old kwarg) pairs that already warned once.
_DEPRECATION_WARNED: set[tuple[str, str]] = set()


def deprecated_kwargs(**renames: str):
    """Decorator: accept renamed keyword arguments for one release.

    ``@deprecated_kwargs(old_name="new_name")`` makes the wrapped
    callable keep accepting ``old_name=...``, forwarding the value to
    ``new_name`` with a :class:`DeprecationWarning` that fires **once**
    per (function, old name) for the process — a long sweep loop does
    not spam the log.  Passing both spellings at once is an error, not a
    silent pick.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            for old, new in renames.items():
                if old not in kwargs:
                    continue
                if new in kwargs:
                    raise TypeError(
                        f"{func.__qualname__}() got both {old!r} (deprecated) "
                        f"and its replacement {new!r}"
                    )
                key = (func.__qualname__, old)
                if key not in _DEPRECATION_WARNED:
                    _DEPRECATION_WARNED.add(key)
                    warnings.warn(
                        f"{func.__qualname__}(): keyword {old!r} is deprecated, "
                        f"use {new!r} — the old spelling will be removed in a "
                        "future release",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                kwargs[new] = kwargs.pop(old)
            return func(*args, **kwargs)

        wrapper.__deprecated_kwargs__ = dict(renames)
        return wrapper

    return decorate


@dataclass(frozen=True)
class SimulationConfig:
    """One validated, immutable description of an Ising run.

    Every field has a default, so ``SimulationConfig()`` is a runnable
    64 x 64 chain at T = 2.0 — the ``tools/check_api.py`` lint enforces
    the every-field-has-a-default invariant.  Derive variants with
    :meth:`evolve` (or :func:`dataclasses.replace`).

    Fields
    ------
    shape:
        Lattice shape — side length or (rows, cols).
    temperature, beta:
        Temperature in J / k_B units, or its inverse; set at most one
        (``beta`` is converted on read; both unset means T = 2.0).
    field:
        External magnetic field h.
    updater:
        "compact" (default), "conv", "checkerboard" or "masked_conv".
    dtype:
        On-device storage dtype: "float32", "bfloat16" or "packed"
        (64 spins per uint64 word; see ``docs/packed_engine.md``).
        Packed runs require ``updater`` "compact" / "checkerboard",
        ``field=0.0``, no ``block_shape``, and a lattice width that is
        a multiple of 128; :func:`distributed` does not support it.
    backend:
        "numpy" (host arithmetic), "tpu" (single simulated TensorCore
        cost model), a pre-built :class:`~repro.backend.base.Backend`,
        or None — the driver's default.  :func:`distributed` builds its
        own per-core TPU backends and only accepts None / "tpu".
    fused:
        Fused sweep engine: "auto" (default), True or False.
    traced:
        Traced sweep executor: "auto" (default — follows the resolved
        ``fused`` setting), True or False.  When on, the driver records
        one fused sweep as a replayable (op, buffer) program and runs
        further sweeps with zero Python dispatch of updater logic
        (:mod:`repro.core.traced`); ``True`` requires the fused engine.
    seed:
        Global Philox seed.
    telemetry:
        ``True`` (attach a fresh
        :class:`~repro.telemetry.report.RunTelemetry`), an existing
        recorder, or None.
    block_shape:
        Compact-grid block size override.
    grid:
        Core grid (rows, cols) — required by :func:`distributed`,
        rejected elsewhere.  ``core_grid=`` is the deprecated spelling.
    pod_grid:
        Optional (pod rows, pod cols) tiling of ``grid`` into sub-pods —
        a hierarchical multi-pod mesh with a two-tier link model (see
        ``docs/multipod.md``).  :func:`distributed` only.
    overlap:
        Split-phase halo overlap: "auto" (default — on exactly for
        multi-pod meshes), True or False.  Changes only the modeled
        clock, never the chain.  :func:`distributed` only.
    fault_plan:
        Optional :class:`~repro.mesh.faults.FaultPlan` for
        :func:`distributed` runs (single-core drivers have no mesh to
        inject into, so they reject it).
    checkpoint_interval:
        Periodic in-memory checkpoint cadence for :func:`distributed`
        (see :meth:`~repro.core.distributed.DistributedIsing.run_resilient`).
    initial:
        "hot", "cold", or an explicit spin array.
    record_trace:
        Keep per-op trace events for Chrome-trace export
        (:func:`distributed` only).
    """

    shape: "int | tuple[int, int]" = 64
    temperature: "float | None" = None
    beta: "float | None" = None
    field: float = 0.0
    updater: str = "compact"
    dtype: "DType | str" = "float32"
    backend: "Backend | str | None" = None
    fused: "bool | str" = "auto"
    traced: "bool | str" = "auto"
    seed: int = 0
    telemetry: "RunTelemetry | bool | None" = None
    block_shape: "tuple[int, int] | None" = None
    grid: "tuple[int, int] | None" = None
    pod_grid: "tuple[int, int] | None" = None
    overlap: "bool | str" = "auto"
    fault_plan: "FaultPlan | None" = None
    checkpoint_interval: "int | None" = None
    initial: "str | np.ndarray" = "hot"
    record_trace: bool = False

    def __post_init__(self) -> None:
        if self.temperature is not None and self.beta is not None:
            raise ValueError(
                "set temperature or beta, not both "
                f"(got temperature={self.temperature}, beta={self.beta})"
            )
        if self.temperature is not None and self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.beta is not None and self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.updater not in _UPDATERS:
            raise ValueError(
                f"updater must be one of {_UPDATERS}, got {self.updater!r}"
            )
        resolve_fused(self.fused)  # raises on junk
        resolve_traced(self.traced)  # raises on junk
        resolve_overlap(self.overlap)  # raises on junk
        dtype = resolve_dtype(self.dtype)  # raises on junk
        if dtype.name == "packed":
            if self.updater not in ("compact", "checkerboard"):
                raise ValueError(
                    f"dtype='packed' supports updater='compact' or "
                    f"'checkerboard' (both run the packed multi-spin "
                    f"engine); {self.updater!r} has no packed kernels — "
                    f"use dtype='float32' for it"
                )
            if self.field:
                raise ValueError(
                    "dtype='packed' requires field=0.0: the three-case "
                    f"Metropolis collapse assumes h = 0 (got {self.field!r}); "
                    "use dtype='float32' for runs with a field"
                )
            if self.block_shape is not None:
                raise ValueError(
                    "dtype='packed' does not take a block_shape: spins are "
                    "stored as 64-bit words per compact quarter, not "
                    "blocked grids"
                )
            if self.fused is False:
                raise ValueError(
                    "dtype='packed' has no elementwise path: the packed "
                    "engine is workspace-backed only; drop fused=False or "
                    "use dtype='float32'"
                )
        if isinstance(self.backend, str) and self.backend not in ("numpy", "tpu"):
            raise ValueError(
                f"backend must be 'numpy', 'tpu', a Backend or None, "
                f"got {self.backend!r}"
            )
        if self.grid is not None:
            rows, cols = self.grid
            if rows < 1 or cols < 1:
                raise ValueError(f"grid must be positive, got {self.grid}")
        if self.pod_grid is not None:
            p_rows, p_cols = self.pod_grid
            if p_rows < 1 or p_cols < 1:
                raise ValueError(f"pod_grid must be positive, got {self.pod_grid}")
            if self.grid is not None and (
                self.grid[0] % p_rows or self.grid[1] % p_cols
            ):
                raise ValueError(
                    f"grid {self.grid} not divisible by pod_grid {self.pod_grid}"
                )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be >= 1 or None, "
                f"got {self.checkpoint_interval}"
            )

    @property
    def resolved_temperature(self) -> float:
        """The run temperature: ``temperature``, ``1 / beta``, or 2.0."""
        if self.temperature is not None:
            return float(self.temperature)
        if self.beta is not None:
            return 1.0 / float(self.beta)
        return 2.0

    def evolve(self, **changes) -> "SimulationConfig":
        """A copy with ``changes`` applied (frozen-dataclass update).

        Setting one of the temperature spellings clears the other, so
        ``cfg.evolve(beta=0.44)`` works on a config built with
        ``temperature=``.
        """
        if "temperature" in changes and "beta" not in changes:
            changes.setdefault("beta", None)
        if "beta" in changes and "temperature" not in changes:
            changes.setdefault("temperature", None)
        return replace(self, **changes)

    def _resolved_telemetry(self) -> "RunTelemetry | None":
        if self.telemetry is True:
            return RunTelemetry()
        if self.telemetry is False or self.telemetry is None:
            return None
        return self.telemetry

    def _resolved_backend(self) -> "Backend | None":
        """Build the single-core backend this config asks for (or None)."""
        if isinstance(self.backend, Backend):
            return self.backend
        dtype = resolve_dtype(self.dtype)
        if self.backend == "numpy":
            return NumpyBackend(dtype)
        if self.backend == "tpu":
            return backend_from_checkpoint("tpu", dtype.name)
        # backend is None: only force a build when a non-default dtype
        # must be carried (the drivers' default is float32 numpy).
        if dtype.name != "float32":
            return NumpyBackend(dtype)
        return None


# Deprecated spellings accepted for one release on the config itself.
SimulationConfig.__init__ = deprecated_kwargs(
    core_grid="grid", T="temperature"
)(SimulationConfig.__init__)


def _reject(config: SimulationConfig, factory: str, *field_names: str) -> None:
    for name in field_names:
        if getattr(config, name) is not None:
            raise ValueError(
                f"{factory}() does not use config field {name!r} "
                f"(got {getattr(config, name)!r}); build a config without it "
                f"or call the right factory"
            )


def _reject_trace(config: SimulationConfig, factory: str) -> None:
    if config.record_trace:
        raise ValueError(
            f"{factory}() has no per-core trace recorder; record_trace is a "
            "distributed() field"
        )
    if config.overlap != "auto":
        raise ValueError(
            f"{factory}() has no halo exchange to overlap; overlap is a "
            "distributed() field"
        )


def simulate(config: SimulationConfig) -> IsingSimulation:
    """Build the single-chain simulation a config describes.

    Rejects distributed-only fields (``grid``, ``pod_grid``, ``overlap``,
    ``fault_plan``, ``checkpoint_interval``, ``record_trace``) instead of
    silently ignoring them.
    """
    _reject(config, "simulate", "grid", "pod_grid", "fault_plan", "checkpoint_interval")
    _reject_trace(config, "simulate")
    return IsingSimulation(
        config.shape,
        config.resolved_temperature,
        updater=config.updater,
        backend=config._resolved_backend(),
        seed=config.seed,
        initial=config.initial,
        block_shape=config.block_shape,
        field=config.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
    )


def ensemble(
    config: SimulationConfig,
    n_chains: "int | None" = None,
    temperatures=None,
) -> EnsembleSimulation:
    """Build a vectorized multi-chain ensemble from a config.

    Pass ``n_chains`` for that many chains at the config's temperature
    (independent streams, shared seed), or ``temperatures`` for one
    chain per listed temperature (the Fig. 3/4 temperature-scan shape).
    Exactly one of the two is required.
    """
    if (n_chains is None) == (temperatures is None):
        raise ValueError("pass exactly one of n_chains or temperatures")
    if temperatures is None:
        if n_chains < 1:
            raise ValueError(f"n_chains must be >= 1, got {n_chains}")
        temperatures = [config.resolved_temperature] * n_chains
    _reject(config, "ensemble", "grid", "pod_grid", "fault_plan", "checkpoint_interval")
    _reject_trace(config, "ensemble")
    return EnsembleSimulation(
        config.shape,
        temperatures,
        updater=config.updater,
        backend=config._resolved_backend(),
        seed=config.seed,
        initial=config.initial,
        block_shape=config.block_shape,
        field=config.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
    )


def distributed(config: SimulationConfig) -> DistributedIsing:
    """Build the SPMD pod-slice simulation a config describes.

    Requires ``grid``; the per-core backends are always simulated-TPU
    cost models, so ``backend`` must be None or "tpu".
    """
    if config.grid is None:
        raise ValueError(
            "distributed() needs config.grid=(rows, cols) — e.g. "
            "SimulationConfig(shape=128, grid=(2, 2))"
        )
    if config.backend is not None and config.backend != "tpu":
        raise ValueError(
            "distributed() always runs on simulated-TPU per-core backends; "
            f"config.backend must be None or 'tpu', got {config.backend!r}"
        )
    if resolve_dtype(config.dtype).name == "packed":
        raise ValueError(
            "distributed() does not support dtype='packed': the halo "
            "exchange moves float spin planes, not 64-spin words; run "
            "packed chains through simulate() / ensemble(), or use "
            "dtype='float32'/'bfloat16' for pod runs"
        )
    return DistributedIsing(
        config.shape,
        config.resolved_temperature,
        core_grid=config.grid,
        pod_grid=config.pod_grid,
        overlap=config.overlap,
        dtype=config.dtype,
        block_shape=config.block_shape,
        seed=config.seed,
        initial=config.initial,
        record_trace=config.record_trace,
        updater="conv" if config.updater == "conv" else "compact",
        field=config.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
        fault_plan=config.fault_plan,
        checkpoint_interval=config.checkpoint_interval,
    )


def load(state: dict, **kwargs):
    """Restore any checkpoint to the class that wrote it.

    Dispatches on the ``checkpoint/v2`` envelope's ``kind`` ("single" /
    "ensemble" / "distributed"); legacy v1 dicts (no ``schema`` key) are
    classified by their distinguishing keys and decode with a
    :class:`DeprecationWarning`.  Extra keyword arguments forward to the
    target class's ``from_state_dict`` (e.g. ``fault_plan=`` /
    ``telemetry=`` for distributed restores — runtime attachments are
    deliberately not part of the checkpoint).

    An envelope from an unknown schema version fails *here*, by name —
    a checkpoint from a newer writer must never be half-decoded by kind
    guessing.
    """
    if not isinstance(state, dict):
        raise TypeError(
            f"checkpoint must be a dict, got {type(state).__name__}"
        )
    schema = state.get("schema")
    if schema is not None and schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"unsupported checkpoint schema {schema!r}; this build reads "
            f"{CHECKPOINT_SCHEMA!r} envelopes and legacy v1 dicts (no "
            "'schema' key) — the checkpoint was written by an unknown "
            "(likely newer) version and needs an explicit migration"
        )
    kind = checkpoint_kind(state)
    loader = {
        "single": IsingSimulation.from_state_dict,
        "ensemble": EnsembleSimulation.from_state_dict,
        "distributed": DistributedIsing.from_state_dict,
    }[kind]
    return loader(state, **kwargs)
