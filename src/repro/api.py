"""The blessed, stable entry point: one config, three factories, one loader.

The simulation drivers (:class:`~repro.core.simulation.IsingSimulation`,
:class:`~repro.core.ensemble.EnsembleSimulation`,
:class:`~repro.core.distributed.DistributedIsing`,
:class:`~repro.core.tempering.TemperingEnsemble`) grew divergent kwarg
lists.  This module puts one validated, frozen :class:`SimulationConfig`
in front of all of them:

    >>> import repro
    >>> cfg = repro.SimulationConfig(shape=128, temperature=2.0, seed=7)
    >>> sim = repro.simulate(cfg)                     # single chain
    >>> chains = repro.ensemble(cfg, n_chains=8)      # vectorized ensemble
    >>> pod = repro.distributed(replace(cfg, grid=(2, 2)))  # SPMD pod run

What the run simulates (the physics) and how the ensemble is laddered
are first-class sub-configs rather than bolt-on kwargs:

    >>> model = repro.ModelSpec(couplings="bimodal", disorder_seed=3)
    >>> ladder = repro.LadderSpec(betas=(0.2, 0.5, 1.0, 2.0))
    >>> pt = repro.tempering(repro.SimulationConfig(
    ...     shape=64, updater="masked_conv", model=model, ladder=ladder))

**Canonicalization:** the flat spellings keep working.  ``field=0.1``
is shorthand for ``model=ModelSpec(field=0.1)``, and ``beta=`` /
``temperature=`` stay the way to temper non-ladder runs;
:attr:`SimulationConfig.resolved_model` folds the flat field into the
model spec (setting conflicting values in both places is an error), so
every downstream consumer — factories, scheduler cache keys, coalescer
— sees one canonical spec regardless of spelling.

One loader dispatches any ``checkpoint/v2`` envelope (or legacy v1
dict, with a :class:`DeprecationWarning`) back to the class that wrote
it:

    >>> sim2 = repro.load(sim.state_dict())

Renamed keyword arguments stay usable for one release through
:func:`deprecated_kwargs`, then fail fast: the PR-4 spellings
(``core_grid=``, ``T=``) have finished their warning release and now
raise :class:`TypeError` naming the replacement.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, replace

import numpy as np

from .backend.base import Backend
from .backend.numpy_backend import NumpyBackend
from .core.config import (
    CHECKPOINT_SCHEMA,
    backend_from_checkpoint,
    checkpoint_kind,
    resolve_fused,
    resolve_overlap,
    resolve_traced,
)
from .core.couplings import COUPLING_KINDS, BondCouplings
from .core.distributed import DistributedIsing
from .core.ensemble import EnsembleSimulation
from .core.simulation import IsingSimulation
from .core.tempering import TemperingEnsemble
from .mesh.faults import FaultPlan
from .sched.client import Client, submit
from .telemetry.report import RunTelemetry
from .tpu.dtypes import DType, resolve_dtype

__all__ = [
    "ModelSpec",
    "LadderSpec",
    "SimulationConfig",
    "simulate",
    "ensemble",
    "tempering",
    "distributed",
    "load",
    "submit",
    "Client",
    "deprecated_kwargs",
]

_UPDATERS = ("compact", "conv", "checkerboard", "masked_conv")

# (qualified function name, old kwarg) pairs that already warned once.
_DEPRECATION_WARNED: set[tuple[str, str]] = set()


def deprecated_kwargs(**renames: str):
    """Decorator: accept renamed keyword arguments for one release.

    ``@deprecated_kwargs(old_name="new_name")`` makes the wrapped
    callable keep accepting ``old_name=...``, forwarding the value to
    ``new_name`` with a :class:`DeprecationWarning` that fires **once**
    per (function, old name) for the process — a long sweep loop does
    not spam the log.  Passing both spellings at once is an error, not a
    silent pick.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            for old, new in renames.items():
                if old not in kwargs:
                    continue
                if new in kwargs:
                    raise TypeError(
                        f"{func.__qualname__}() got both {old!r} (deprecated) "
                        f"and its replacement {new!r}"
                    )
                key = (func.__qualname__, old)
                if key not in _DEPRECATION_WARNED:
                    _DEPRECATION_WARNED.add(key)
                    warnings.warn(
                        f"{func.__qualname__}(): keyword {old!r} is deprecated, "
                        f"use {new!r} — the old spelling will be removed in a "
                        "future release",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                kwargs[new] = kwargs.pop(old)
            return func(*args, **kwargs)

        wrapper.__deprecated_kwargs__ = dict(renames)
        return wrapper

    return decorate


@dataclass(frozen=True)
class ModelSpec:
    """What the run simulates: the Hamiltonian's quenched parameters.

    Every field has a default (``ModelSpec()`` is the clean zero-field
    ferromagnet, exactly the historical implicit model), and instances
    are frozen and hashable so they can live inside the frozen
    :class:`SimulationConfig` and its cache keys.

    Fields
    ------
    couplings:
        "ferro" (J = +1 everywhere, default), "bimodal" (+/-J spin
        glass) or "gaussian" (J ~ N(0, 1)).  Disordered kinds currently
        require ``updater="masked_conv"`` and an unpacked dtype (see
        ``docs/tempering.md`` for the support matrix).
    disorder_seed:
        Seed of the quenched bond draw; the realisation is a pure
        function of (couplings, shape, disorder_seed).  Ignored for
        "ferro".
    field:
        External magnetic field h.  ``SimulationConfig(field=...)`` is
        shorthand for setting it here (see ``resolved_model``).
    lattice:
        Lattice geometry; "square" is the only kind wired up today —
        the field exists so triangular/3D variants extend the spec
        instead of growing new flat kwargs.
    """

    couplings: str = "ferro"
    disorder_seed: int = 0
    field: float = 0.0
    lattice: str = "square"

    def __post_init__(self) -> None:
        if self.couplings not in COUPLING_KINDS:
            raise ValueError(
                f"couplings must be one of {COUPLING_KINDS}, "
                f"got {self.couplings!r}"
            )
        if self.lattice != "square":
            raise ValueError(
                f"lattice must be 'square' (the only wired-up geometry), "
                f"got {self.lattice!r}"
            )
        object.__setattr__(self, "disorder_seed", int(self.disorder_seed))
        object.__setattr__(self, "field", float(self.field))


@dataclass(frozen=True)
class LadderSpec:
    """How a tempering run ladders its temperatures.

    Pass either ``betas`` or ``temperatures`` (not both); the sequence
    *order defines swap adjacency* — replica exchange proposes swaps
    between adjacent entries as given, so the order is part of the
    trajectory, and the two spellings of the same ladder canonicalise
    to the same :attr:`resolved_betas` (and the same scheduler cache
    key).

    Fields
    ------
    betas:
        Inverse-temperature ladder, in adjacency order.
    temperatures:
        The same ladder spelled as temperatures (converted on read).
    n_replicas:
        Independent replicas of the full ladder (>= 2 enables the
        replica-overlap observables).
    swap_interval:
        Sweeps between swap rounds.
    """

    betas: "tuple[float, ...]" = ()
    temperatures: "tuple[float, ...]" = ()
    n_replicas: int = 2
    swap_interval: int = 1

    def __post_init__(self) -> None:
        betas = tuple(float(b) for b in self.betas)
        temps = tuple(float(t) for t in self.temperatures)
        if betas and temps:
            raise ValueError(
                "set LadderSpec betas or temperatures, not both "
                f"(got betas={betas}, temperatures={temps})"
            )
        if any(b <= 0 for b in betas):
            raise ValueError(f"betas must be positive, got {betas}")
        if any(t <= 0 for t in temps):
            raise ValueError(f"temperatures must be positive, got {temps}")
        if int(self.n_replicas) < 1:
            raise ValueError(
                f"n_replicas must be >= 1, got {self.n_replicas}"
            )
        if int(self.swap_interval) < 1:
            raise ValueError(
                f"swap_interval must be >= 1, got {self.swap_interval}"
            )
        object.__setattr__(self, "betas", betas)
        object.__setattr__(self, "temperatures", temps)
        object.__setattr__(self, "n_replicas", int(self.n_replicas))
        object.__setattr__(self, "swap_interval", int(self.swap_interval))

    @property
    def resolved_betas(self) -> "tuple[float, ...]":
        """The beta ladder in adjacency order, whichever spelling built it."""
        if self.betas:
            return self.betas
        return tuple(1.0 / t for t in self.temperatures)


@dataclass(frozen=True)
class SimulationConfig:
    """One validated, immutable description of an Ising run.

    Every field has a default, so ``SimulationConfig()`` is a runnable
    64 x 64 chain at T = 2.0 — the ``tools/check_api.py`` lint enforces
    the every-field-has-a-default invariant.  Derive variants with
    :meth:`evolve` (or :func:`dataclasses.replace`).

    Fields
    ------
    shape:
        Lattice shape — side length or (rows, cols).
    temperature, beta:
        Temperature in J / k_B units, or its inverse; set at most one
        (``beta`` is converted on read; both unset means T = 2.0).
        Ladder runs set neither — the :class:`LadderSpec` carries them.
    field:
        External magnetic field h — flat shorthand for
        ``model=ModelSpec(field=...)``; :attr:`resolved_model` folds it
        in, and setting conflicting values in both places is an error.
    model:
        Optional :class:`ModelSpec` (couplings, disorder seed, field,
        lattice).  None means the clean zero-field ferromagnet (plus
        the flat ``field``).
    ladder:
        Optional :class:`LadderSpec`; required by :func:`tempering`,
        rejected by the other factories.
    updater:
        "compact" (default), "conv", "checkerboard" or "masked_conv".
    dtype:
        On-device storage dtype: "float32", "bfloat16" or "packed"
        (64 spins per uint64 word; see ``docs/packed_engine.md``).
        Packed runs require ``updater`` "compact" / "checkerboard",
        ``field=0.0``, no ``block_shape``, and a lattice width that is
        a multiple of 128; :func:`distributed` does not support it.
    backend:
        "numpy" (host arithmetic), "tpu" (single simulated TensorCore
        cost model), a pre-built :class:`~repro.backend.base.Backend`,
        or None — the driver's default.  :func:`distributed` builds its
        own per-core TPU backends and only accepts None / "tpu".
    fused:
        Fused sweep engine: "auto" (default), True or False.
    traced:
        Traced sweep executor: "auto" (default — follows the resolved
        ``fused`` setting), True or False.  When on, the driver records
        one fused sweep as a replayable (op, buffer) program and runs
        further sweeps with zero Python dispatch of updater logic
        (:mod:`repro.core.traced`); ``True`` requires the fused engine.
    seed:
        Global Philox seed.
    telemetry:
        ``True`` (attach a fresh
        :class:`~repro.telemetry.report.RunTelemetry`), an existing
        recorder, or None.
    block_shape:
        Compact-grid block size override.
    grid:
        Core grid (rows, cols) — required by :func:`distributed`,
        rejected elsewhere.  ``core_grid=`` is the deprecated spelling.
    pod_grid:
        Optional (pod rows, pod cols) tiling of ``grid`` into sub-pods —
        a hierarchical multi-pod mesh with a two-tier link model (see
        ``docs/multipod.md``).  :func:`distributed` only.
    overlap:
        Split-phase halo overlap: "auto" (default — on exactly for
        multi-pod meshes), True or False.  Changes only the modeled
        clock, never the chain.  :func:`distributed` only.
    fault_plan:
        Optional :class:`~repro.mesh.faults.FaultPlan` for
        :func:`distributed` runs (single-core drivers have no mesh to
        inject into, so they reject it).
    checkpoint_interval:
        Periodic in-memory checkpoint cadence for :func:`distributed`
        (see :meth:`~repro.core.distributed.DistributedIsing.run_resilient`).
    initial:
        "hot", "cold", or an explicit spin array.
    record_trace:
        Keep per-op trace events for Chrome-trace export
        (:func:`distributed` only).
    """

    shape: "int | tuple[int, int]" = 64
    temperature: "float | None" = None
    beta: "float | None" = None
    field: float = 0.0
    model: "ModelSpec | None" = None
    ladder: "LadderSpec | None" = None
    updater: str = "compact"
    dtype: "DType | str" = "float32"
    backend: "Backend | str | None" = None
    fused: "bool | str" = "auto"
    traced: "bool | str" = "auto"
    seed: int = 0
    telemetry: "RunTelemetry | bool | None" = None
    block_shape: "tuple[int, int] | None" = None
    grid: "tuple[int, int] | None" = None
    pod_grid: "tuple[int, int] | None" = None
    overlap: "bool | str" = "auto"
    fault_plan: "FaultPlan | None" = None
    checkpoint_interval: "int | None" = None
    initial: "str | np.ndarray" = "hot"
    record_trace: bool = False

    def __post_init__(self) -> None:
        if self.temperature is not None and self.beta is not None:
            raise ValueError(
                "set temperature or beta, not both "
                f"(got temperature={self.temperature}, beta={self.beta})"
            )
        if self.model is not None and not isinstance(self.model, ModelSpec):
            raise TypeError(
                f"model must be a ModelSpec or None, got "
                f"{type(self.model).__name__}"
            )
        if self.ladder is not None and not isinstance(self.ladder, LadderSpec):
            raise TypeError(
                f"ladder must be a LadderSpec or None, got "
                f"{type(self.ladder).__name__}"
            )
        if (
            self.model is not None
            and self.field != 0.0
            and self.model.field != 0.0
            and self.field != self.model.field
        ):
            raise ValueError(
                f"conflicting fields: flat field={self.field} vs "
                f"model.field={self.model.field}; set one spelling (they "
                "canonicalise to the same resolved model)"
            )
        if self.ladder is not None and (
            self.temperature is not None or self.beta is not None
        ):
            raise ValueError(
                "a ladder config carries its temperatures in the "
                "LadderSpec; drop the flat temperature=/beta= kwargs"
            )
        if self.temperature is not None and self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.beta is not None and self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.updater not in _UPDATERS:
            raise ValueError(
                f"updater must be one of {_UPDATERS}, got {self.updater!r}"
            )
        resolve_fused(self.fused)  # raises on junk
        resolve_traced(self.traced)  # raises on junk
        resolve_overlap(self.overlap)  # raises on junk
        dtype = resolve_dtype(self.dtype)  # raises on junk
        if dtype.name == "packed":
            if self.updater not in ("compact", "checkerboard"):
                raise ValueError(
                    f"dtype='packed' supports updater='compact' or "
                    f"'checkerboard' (both run the packed multi-spin "
                    f"engine); {self.updater!r} has no packed kernels — "
                    f"use dtype='float32' for it"
                )
            if self.field:
                raise ValueError(
                    "dtype='packed' requires field=0.0: the three-case "
                    f"Metropolis collapse assumes h = 0 (got {self.field!r}); "
                    "use dtype='float32' for runs with a field"
                )
            if self.block_shape is not None:
                raise ValueError(
                    "dtype='packed' does not take a block_shape: spins are "
                    "stored as 64-bit words per compact quarter, not "
                    "blocked grids"
                )
            if self.fused is False:
                raise ValueError(
                    "dtype='packed' has no elementwise path: the packed "
                    "engine is workspace-backed only; drop fused=False or "
                    "use dtype='float32'"
                )
        if self.model is not None and self.model.couplings != "ferro":
            if self.updater != "masked_conv":
                raise ValueError(
                    f"disordered couplings ({self.model.couplings!r}) require "
                    f"updater='masked_conv' (the compact/blocked updaters "
                    f"have no per-bond kernels yet); got {self.updater!r}"
                )
            if dtype.name == "packed":
                raise ValueError(
                    "dtype='packed' supports couplings='ferro' only: the "
                    "three-case Metropolis collapse assumes uniform J = 1"
                )
        if isinstance(self.backend, str) and self.backend not in ("numpy", "tpu"):
            raise ValueError(
                f"backend must be 'numpy', 'tpu', a Backend or None, "
                f"got {self.backend!r}"
            )
        if self.grid is not None:
            rows, cols = self.grid
            if rows < 1 or cols < 1:
                raise ValueError(f"grid must be positive, got {self.grid}")
        if self.pod_grid is not None:
            p_rows, p_cols = self.pod_grid
            if p_rows < 1 or p_cols < 1:
                raise ValueError(f"pod_grid must be positive, got {self.pod_grid}")
            if self.grid is not None and (
                self.grid[0] % p_rows or self.grid[1] % p_cols
            ):
                raise ValueError(
                    f"grid {self.grid} not divisible by pod_grid {self.pod_grid}"
                )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be >= 1 or None, "
                f"got {self.checkpoint_interval}"
            )

    @property
    def resolved_temperature(self) -> float:
        """The run temperature: ``temperature``, ``1 / beta``, or 2.0."""
        if self.temperature is not None:
            return float(self.temperature)
        if self.beta is not None:
            return 1.0 / float(self.beta)
        return 2.0

    @property
    def resolved_model(self) -> ModelSpec:
        """The canonical :class:`ModelSpec`, whichever spelling built it.

        ``model=None`` yields the clean ferromagnet carrying the flat
        ``field``; a model with ``field=0.0`` inherits a non-zero flat
        ``field``.  Flat kwargs and spec-built configs of the same
        physics therefore resolve to equal specs — and to the same
        scheduler cache key.
        """
        if self.model is None:
            return ModelSpec(field=self.field)
        if self.field != 0.0 and self.model.field == 0.0:
            return replace(self.model, field=self.field)
        return self.model

    def evolve(self, **changes) -> "SimulationConfig":
        """A copy with ``changes`` applied (frozen-dataclass update).

        Setting one of the temperature spellings clears the other, so
        ``cfg.evolve(beta=0.44)`` works on a config built with
        ``temperature=``.
        """
        if "temperature" in changes and "beta" not in changes:
            changes.setdefault("beta", None)
        if "beta" in changes and "temperature" not in changes:
            changes.setdefault("temperature", None)
        return replace(self, **changes)

    def _resolved_telemetry(self) -> "RunTelemetry | None":
        if self.telemetry is True:
            return RunTelemetry()
        if self.telemetry is False or self.telemetry is None:
            return None
        return self.telemetry

    def _resolved_backend(self) -> "Backend | None":
        """Build the single-core backend this config asks for (or None)."""
        if isinstance(self.backend, Backend):
            return self.backend
        dtype = resolve_dtype(self.dtype)
        if self.backend == "numpy":
            return NumpyBackend(dtype)
        if self.backend == "tpu":
            return backend_from_checkpoint("tpu", dtype.name)
        # backend is None: only force a build when a non-default dtype
        # must be carried (the drivers' default is float32 numpy).
        if dtype.name != "float32":
            return NumpyBackend(dtype)
        return None


def _removed_kwargs(**renames: str):
    """Decorator: fail fast on kwargs whose deprecation window has closed.

    The second half of the :func:`deprecated_kwargs` lifecycle — after
    one release of warnings the old spelling stops being forwarded and
    raises a :class:`TypeError` that names its replacement.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            for old, new in renames.items():
                if old in kwargs:
                    raise TypeError(
                        f"{func.__qualname__}() no longer accepts {old!r} "
                        f"(removed after its deprecation release); use {new!r}"
                    )
            return func(*args, **kwargs)

        wrapper.__removed_kwargs__ = dict(renames)
        return wrapper

    return decorate


# The PR-4 deprecated spellings finished their warning release.
SimulationConfig.__init__ = _removed_kwargs(
    core_grid="grid", T="temperature"
)(SimulationConfig.__init__)


def _reject(config: SimulationConfig, factory: str, *field_names: str) -> None:
    for name in field_names:
        if getattr(config, name) is not None:
            raise ValueError(
                f"{factory}() does not use config field {name!r} "
                f"(got {getattr(config, name)!r}); build a config without it "
                f"or call the right factory"
            )


def _reject_trace(config: SimulationConfig, factory: str) -> None:
    if config.record_trace:
        raise ValueError(
            f"{factory}() has no per-core trace recorder; record_trace is a "
            "distributed() field"
        )
    if config.overlap != "auto":
        raise ValueError(
            f"{factory}() has no halo exchange to overlap; overlap is a "
            "distributed() field"
        )


def _reject_disorder(config: SimulationConfig, factory: str) -> None:
    model = config.resolved_model
    if model.couplings != "ferro":
        raise ValueError(
            f"{factory}() runs the clean ferromagnet only; disordered "
            f"couplings ({model.couplings!r}) run on ensemble() or "
            "tempering()"
        )


def simulate(config: SimulationConfig) -> IsingSimulation:
    """Build the single-chain simulation a config describes.

    Rejects distributed-only fields (``grid``, ``pod_grid``, ``overlap``,
    ``fault_plan``, ``checkpoint_interval``, ``record_trace``) and
    tempering-only fields (``ladder``) instead of silently ignoring
    them.
    """
    _reject(config, "simulate", "grid", "pod_grid", "fault_plan", "checkpoint_interval", "ladder")
    _reject_trace(config, "simulate")
    _reject_disorder(config, "simulate")
    return IsingSimulation(
        config.shape,
        config.resolved_temperature,
        updater=config.updater,
        backend=config._resolved_backend(),
        seed=config.seed,
        initial=config.initial,
        block_shape=config.block_shape,
        field=config.resolved_model.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
    )


def ensemble(
    config: SimulationConfig,
    n_chains: "int | None" = None,
    temperatures=None,
) -> EnsembleSimulation:
    """Build a vectorized multi-chain ensemble from a config.

    Pass ``n_chains`` for that many chains at the config's temperature
    (independent streams, shared seed), or ``temperatures`` for one
    chain per listed temperature (the Fig. 3/4 temperature-scan shape).
    Exactly one of the two is required.
    """
    if (n_chains is None) == (temperatures is None):
        raise ValueError("pass exactly one of n_chains or temperatures")
    if temperatures is None:
        if n_chains < 1:
            raise ValueError(f"n_chains must be >= 1, got {n_chains}")
        temperatures = [config.resolved_temperature] * n_chains
    _reject(config, "ensemble", "grid", "pod_grid", "fault_plan", "checkpoint_interval", "ladder")
    _reject_trace(config, "ensemble")
    model = config.resolved_model
    return EnsembleSimulation(
        config.shape,
        temperatures,
        updater=config.updater,
        backend=config._resolved_backend(),
        seed=config.seed,
        initial=config.initial,
        block_shape=config.block_shape,
        field=model.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
        couplings=_build_couplings(model, config.shape),
    )


def _build_couplings(
    model: ModelSpec, shape: "int | tuple[int, int]"
) -> "BondCouplings | None":
    """Materialise the model's quenched bond realisation (None for ferro)."""
    if model.couplings == "ferro":
        return None
    return BondCouplings.generate(model.couplings, shape, model.disorder_seed)


def tempering(config: SimulationConfig) -> TemperingEnsemble:
    """Build the replica-exchange ladder a config describes.

    Requires ``config.ladder`` (a :class:`LadderSpec` with a non-empty
    ladder); the model — couplings, disorder seed, field — comes from
    :attr:`SimulationConfig.resolved_model`.  Flat ``temperature=`` /
    ``beta=`` kwargs are rejected: the ladder carries the temperatures.
    """
    if config.ladder is None:
        raise ValueError(
            "tempering() needs config.ladder — e.g. SimulationConfig("
            "shape=64, ladder=LadderSpec(betas=(0.2, 0.5, 1.0)))"
        )
    betas = config.ladder.resolved_betas
    if not betas:
        raise ValueError(
            "config.ladder has an empty ladder; set LadderSpec betas= or "
            "temperatures="
        )
    _reject(config, "tempering", "grid", "pod_grid", "fault_plan", "checkpoint_interval")
    _reject_trace(config, "tempering")
    model = config.resolved_model
    return TemperingEnsemble(
        config.shape,
        betas,
        n_replicas=config.ladder.n_replicas,
        swap_interval=config.ladder.swap_interval,
        couplings=model.couplings,
        disorder_seed=model.disorder_seed,
        updater=config.updater,
        backend=config._resolved_backend(),
        seed=config.seed,
        field=model.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
        initial=config.initial,
        block_shape=config.block_shape,
    )


def distributed(config: SimulationConfig) -> DistributedIsing:
    """Build the SPMD pod-slice simulation a config describes.

    Requires ``grid``; the per-core backends are always simulated-TPU
    cost models, so ``backend`` must be None or "tpu".
    """
    if config.grid is None:
        raise ValueError(
            "distributed() needs config.grid=(rows, cols) — e.g. "
            "SimulationConfig(shape=128, grid=(2, 2))"
        )
    _reject(config, "distributed", "ladder")
    _reject_disorder(config, "distributed")
    if config.backend is not None and config.backend != "tpu":
        raise ValueError(
            "distributed() always runs on simulated-TPU per-core backends; "
            f"config.backend must be None or 'tpu', got {config.backend!r}"
        )
    if resolve_dtype(config.dtype).name == "packed":
        raise ValueError(
            "distributed() does not support dtype='packed': the halo "
            "exchange moves float spin planes, not 64-spin words; run "
            "packed chains through simulate() / ensemble(), or use "
            "dtype='float32'/'bfloat16' for pod runs"
        )
    return DistributedIsing(
        config.shape,
        config.resolved_temperature,
        core_grid=config.grid,
        pod_grid=config.pod_grid,
        overlap=config.overlap,
        dtype=config.dtype,
        block_shape=config.block_shape,
        seed=config.seed,
        initial=config.initial,
        record_trace=config.record_trace,
        updater="conv" if config.updater == "conv" else "compact",
        field=config.resolved_model.field,
        fused=config.fused,
        traced=config.traced,
        telemetry=config._resolved_telemetry(),
        fault_plan=config.fault_plan,
        checkpoint_interval=config.checkpoint_interval,
    )


def load(state: dict, **kwargs):
    """Restore any checkpoint to the class that wrote it.

    Dispatches on the ``checkpoint/v2`` envelope's ``kind`` ("single" /
    "ensemble" / "distributed" / "tempering"); legacy v1 dicts (no
    ``schema`` key) are
    classified by their distinguishing keys and decode with a
    :class:`DeprecationWarning`.  Extra keyword arguments forward to the
    target class's ``from_state_dict`` (e.g. ``fault_plan=`` /
    ``telemetry=`` for distributed restores — runtime attachments are
    deliberately not part of the checkpoint).

    An envelope from an unknown schema version fails *here*, by name —
    a checkpoint from a newer writer must never be half-decoded by kind
    guessing.
    """
    if not isinstance(state, dict):
        raise TypeError(
            f"checkpoint must be a dict, got {type(state).__name__}"
        )
    schema = state.get("schema")
    if schema is not None and schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"unsupported checkpoint schema {schema!r}; this build reads "
            f"{CHECKPOINT_SCHEMA!r} envelopes and legacy v1 dicts (no "
            "'schema' key) — the checkpoint was written by an unknown "
            "(likely newer) version and needs an explicit migration"
        )
    kind = checkpoint_kind(state)
    loader = {
        "single": IsingSimulation.from_state_dict,
        "ensemble": EnsembleSimulation.from_state_dict,
        "distributed": DistributedIsing.from_state_dict,
        "tempering": TemperingEnsemble.from_state_dict,
    }[kind]
    return loader(state, **kwargs)
