"""The Binder cumulant U4 — the paper's sensitive phase-transition probe.

``U4(T) = 1 - <m^4> / (3 <m^2>^2)`` (the kurtosis of the magnetization
distribution).  Its size-independence at Tc makes curves for different
lattice sizes cross at the critical point (Fig. 4 middle), which is a far
sharper test of simulation correctness than m(T) itself.  Deep in the
ordered phase U4 -> 2/3; in the disordered phase (Gaussian m) U4 -> 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "binder_cumulant",
    "binder_from_moments",
    "replica_overlap",
    "spin_glass_binder",
]


def binder_from_moments(m2: float, m4: float) -> float:
    """U4 from the second and fourth magnetization moments."""
    if m2 <= 0.0:
        raise ValueError(f"<m^2> must be positive, got {m2}")
    if m4 < 0.0:
        raise ValueError(f"<m^4> must be non-negative, got {m4}")
    return 1.0 - m4 / (3.0 * m2 * m2)


def binder_cumulant(m_samples: np.ndarray) -> float:
    """U4 estimated from a series of per-sweep magnetization samples."""
    m = np.asarray(m_samples, dtype=np.float64)
    if m.size == 0:
        raise ValueError("need at least one magnetization sample")
    m_sq = m * m
    return binder_from_moments(float(np.mean(m_sq)), float(np.mean(m_sq * m_sq)))


def replica_overlap(lattice_a: np.ndarray, lattice_b: np.ndarray) -> float:
    """Edwards-Anderson site overlap ``q = (1/N) sum_i s_i^(a) s_i^(b)``.

    The two lattices are independent thermal replicas of the *same*
    disorder realisation at the same temperature.  In a spin glass
    magnetization self-averages to zero, so q (not m) is the order
    parameter whose distribution the Binder analysis probes.
    """
    a = np.asarray(lattice_a, dtype=np.float64)
    b = np.asarray(lattice_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(
            f"replica shapes differ: {a.shape} vs {b.shape}"
        )
    if a.size == 0:
        raise ValueError("replica lattices must be non-empty")
    return float(np.mean(a * b))


def spin_glass_binder(q_samples: np.ndarray) -> float:
    """Spin-glass Binder cumulant ``g = 1 - <q^4> / (3 <q^2>^2)``.

    ``q_samples`` is any array of replica-overlap samples for one
    (temperature, disorder) point — e.g. the ``(n_samples, n_pairs)``
    slice of :meth:`TemperingEnsemble.sample_overlaps` at one ladder
    slot; all axes are pooled.  Like U4, g is size-independent at the
    spin-glass transition, so curves for different L cross at T_SG
    (for the 2D +/-J model the crossing drifts toward T = 0, the
    standard signature that T_SG = 0 in 2D).
    """
    q = np.asarray(q_samples, dtype=np.float64).ravel()
    if q.size == 0:
        raise ValueError("need at least one overlap sample")
    q_sq = q * q
    return binder_from_moments(float(np.mean(q_sq)), float(np.mean(q_sq * q_sq)))
