"""The Binder cumulant U4 — the paper's sensitive phase-transition probe.

``U4(T) = 1 - <m^4> / (3 <m^2>^2)`` (the kurtosis of the magnetization
distribution).  Its size-independence at Tc makes curves for different
lattice sizes cross at the critical point (Fig. 4 middle), which is a far
sharper test of simulation correctness than m(T) itself.  Deep in the
ordered phase U4 -> 2/3; in the disordered phase (Gaussian m) U4 -> 0.
"""

from __future__ import annotations

import numpy as np

__all__ = ["binder_cumulant", "binder_from_moments"]


def binder_from_moments(m2: float, m4: float) -> float:
    """U4 from the second and fourth magnetization moments."""
    if m2 <= 0.0:
        raise ValueError(f"<m^2> must be positive, got {m2}")
    if m4 < 0.0:
        raise ValueError(f"<m^4> must be non-negative, got {m4}")
    return 1.0 - m4 / (3.0 * m2 * m2)


def binder_cumulant(m_samples: np.ndarray) -> float:
    """U4 estimated from a series of per-sweep magnetization samples."""
    m = np.asarray(m_samples, dtype=np.float64)
    if m.size == 0:
        raise ValueError("need at least one magnetization sample")
    m_sq = m * m
    return binder_from_moments(float(np.mean(m_sq)), float(np.mean(m_sq * m_sq)))
