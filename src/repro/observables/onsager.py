"""Exact results for the infinite 2D square-lattice Ising model.

Onsager (1944) solved the model analytically; Yang (1952) derived the
spontaneous magnetization.  These closed forms anchor the correctness
tests and draw the dashed critical line / reference curves in the Fig. 4
reproduction:

* critical temperature ``Tc = 2 / ln(1 + sqrt(2))``;
* spontaneous magnetization ``m(T) = (1 - sinh(2/T)^-4)^(1/8)`` for
  ``T < Tc``, zero above;
* internal energy per site via the complete elliptic integral K.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ellipk

__all__ = [
    "T_CRITICAL",
    "BETA_CRITICAL",
    "critical_temperature",
    "spontaneous_magnetization",
    "internal_energy",
]

#: Exact critical temperature in units of J / k_B.
T_CRITICAL = 2.0 / math.log(1.0 + math.sqrt(2.0))
#: Exact critical inverse temperature.
BETA_CRITICAL = 1.0 / T_CRITICAL


def critical_temperature() -> float:
    """Onsager's exact Tc = 2 / ln(1 + sqrt 2) ~ 2.269185."""
    return T_CRITICAL


def spontaneous_magnetization(temperature: float | np.ndarray) -> np.ndarray:
    """Yang's exact spontaneous magnetization of the infinite lattice.

    Vectorised over temperature; returns 0 at and above Tc.
    """
    t = np.asarray(temperature, dtype=np.float64)
    if np.any(t <= 0):
        raise ValueError("temperature must be positive")
    with np.errstate(over="ignore"):
        s = np.sinh(2.0 / t)
    inner = 1.0 - s**-4.0
    result = np.where(t < T_CRITICAL, np.maximum(inner, 0.0) ** 0.125, 0.0)
    return result if result.ndim else float(result)


def internal_energy(temperature: float | np.ndarray) -> np.ndarray:
    """Exact internal energy per site u(T) of the infinite lattice.

    ``u = -coth(2b) * [1 + (2/pi) * (2 tanh(2b)^2 - 1) * K(k^2)]`` with
    ``k = 2 sinh(2b) / cosh(2b)^2`` and ``b = 1/T`` (scipy's ``ellipk``
    takes the parameter ``m = k^2``).  u(0) = -2, u(inf) = 0, and the
    slope is singular at Tc.
    """
    t = np.asarray(temperature, dtype=np.float64)
    if np.any(t <= 0):
        raise ValueError("temperature must be positive")
    beta = 1.0 / t
    sh = np.sinh(2.0 * beta)
    ch = np.cosh(2.0 * beta)
    k = 2.0 * sh / (ch * ch)
    kprime = 2.0 * np.tanh(2.0 * beta) ** 2 - 1.0
    # At Tc, k = 1 makes K diverge logarithmically while kprime -> 0
    # linearly, so the product vanishes and u(Tc) = -sqrt(2) exactly;
    # evaluate the limit explicitly to avoid inf * 0.
    with np.errstate(divide="ignore", invalid="ignore"):
        correction = (2.0 / np.pi) * kprime * ellipk(k * k)
    correction = np.where(np.isfinite(correction), correction, 0.0)
    u = -(ch / sh) * (1.0 + correction)
    return u if u.ndim else float(u)
