"""Brute-force exact results on tiny lattices.

For lattices with up to ~20 sites the full configuration space (2^N
states) is enumerable, which gives *exact* finite-lattice observables —
the strongest possible correctness oracle for the MCMC updaters — and the
exact one-sweep transition matrix of the checkerboard kernel, which lets
the tests verify the paper's appendix stationarity proof numerically:
``pi P = pi`` for the Boltzmann distribution ``pi``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "enumerate_states",
    "exact_observables",
    "boltzmann_distribution",
    "checkerboard_phase_matrix",
    "checkerboard_sweep_matrix",
]

_MAX_SITES = 20


def _check_shape(shape: tuple[int, int]) -> int:
    rows, cols = shape
    n_sites = rows * cols
    if n_sites > _MAX_SITES:
        raise ValueError(
            f"{rows}x{cols} lattice has {n_sites} sites; enumeration is "
            f"capped at {_MAX_SITES} sites (2^{_MAX_SITES} states)"
        )
    return n_sites


def enumerate_states(shape: tuple[int, int]) -> np.ndarray:
    """All 2^N spin configurations as a float32 array (S, rows, cols).

    State index ``s`` maps to spins via the bits of ``s`` in row-major
    site order: bit 0 is site (0, 0).  Bit value 1 means spin +1.
    """
    rows, cols = shape
    n_sites = _check_shape(shape)
    states = np.arange(1 << n_sites, dtype=np.uint32)
    bits = (states[:, None] >> np.arange(n_sites, dtype=np.uint32)) & np.uint32(1)
    spins = (2.0 * bits.astype(np.float32)) - 1.0
    return spins.reshape(-1, rows, cols)


def _energies(spins: np.ndarray, field: float = 0.0) -> np.ndarray:
    """Total energies of a batch of configurations (S, rows, cols).

    ``field`` adds the paper's Zeeman term ``-h * sum_i sigma_i``.
    """
    nn = (
        np.roll(spins, 1, axis=1)
        + np.roll(spins, -1, axis=1)
        + np.roll(spins, 1, axis=2)
        + np.roll(spins, -1, axis=2)
    )
    bond = -0.5 * np.sum(spins.astype(np.float64) * nn, axis=(1, 2))
    if field:
        bond -= field * np.sum(spins.astype(np.float64), axis=(1, 2))
    return bond


def boltzmann_distribution(
    shape: tuple[int, int], beta: float, field: float = 0.0
) -> np.ndarray:
    """The exact Boltzmann probability of every configuration."""
    spins = enumerate_states(shape)
    energies = _energies(spins, field)
    log_weights = -beta * energies
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    return weights / weights.sum()


def exact_observables(
    shape: tuple[int, int], beta: float, field: float = 0.0
) -> dict[str, float]:
    """Exact thermal averages on a tiny torus.

    Returns ``m`` = <m> (nonzero only with a field), ``abs_m`` = <|m|>,
    ``m2`` = <m^2>, ``m4`` = <m^4>, ``energy_per_spin`` = <E>/N, and the
    Binder cumulant ``u4``.
    """
    spins = enumerate_states(shape)
    n_sites = spins.shape[1] * spins.shape[2]
    pi = boltzmann_distribution(shape, beta, field)
    m = np.mean(spins.astype(np.float64), axis=(1, 2))
    energies = _energies(spins, field)
    m2 = float(np.dot(pi, m * m))
    m4 = float(np.dot(pi, m**4))
    return {
        "m": float(np.dot(pi, m)),
        "abs_m": float(np.dot(pi, np.abs(m))),
        "m2": m2,
        "m4": m4,
        "energy_per_spin": float(np.dot(pi, energies)) / n_sites,
        "u4": 1.0 - m4 / (3.0 * m2 * m2),
    }


def _site_neighbors(shape: tuple[int, int], i: int, j: int) -> list[tuple[int, int]]:
    rows, cols = shape
    return [
        ((i - 1) % rows, j),
        ((i + 1) % rows, j),
        (i, (j - 1) % cols),
        (i, (j + 1) % cols),
    ]


def checkerboard_phase_matrix(
    shape: tuple[int, int], beta: float, color: str, field: float = 0.0
) -> np.ndarray:
    """Exact transition matrix of one colour phase of the checkerboard kernel.

    Row s, column t holds P(state s -> state t) when every site of the
    given colour is independently Metropolis-updated while the opposite
    colour is frozen.  Lattice sides must be even so the colouring is
    consistent on the torus.  ``field`` adds the Zeeman term to the flip
    energies.
    """
    rows, cols = shape
    if rows % 2 or cols % 2:
        raise ValueError(f"lattice sides must be even, got {shape}")
    if color not in ("black", "white"):
        raise ValueError(f"color must be 'black' or 'white', got {color!r}")
    n_sites = _check_shape(shape)
    spins = enumerate_states(shape)
    n_states = spins.shape[0]

    want_parity = 0 if color == "black" else 1
    active = [
        (i, j)
        for i in range(rows)
        for j in range(cols)
        if (i + j) % 2 == want_parity
    ]
    site_bit = {(i, j): i * cols + j for i in range(rows) for j in range(cols)}

    matrix = np.zeros((n_states, n_states), dtype=np.float64)
    for s in range(n_states):
        sigma = spins[s]
        # Flip probability of each active site; neighbours are all of the
        # opposite colour, hence frozen during this phase.
        p_flip = []
        for (i, j) in active:
            nn = sum(sigma[a, b] for (a, b) in _site_neighbors(shape, i, j))
            p_flip.append(
                min(1.0, np.exp(-2.0 * beta * sigma[i, j] * (nn + field)))
            )
        # Enumerate every subset of active sites as the flip pattern.
        for pattern in range(1 << len(active)):
            prob = 1.0
            target = s
            for idx, (i, j) in enumerate(active):
                if (pattern >> idx) & 1:
                    prob *= p_flip[idx]
                    target ^= 1 << site_bit[(i, j)]
                else:
                    prob *= 1.0 - p_flip[idx]
            matrix[s, target] += prob
    return matrix


def checkerboard_sweep_matrix(
    shape: tuple[int, int], beta: float, field: float = 0.0
) -> np.ndarray:
    """Exact transition matrix of one full sweep (black then white phase)."""
    black = checkerboard_phase_matrix(shape, beta, "black", field)
    white = checkerboard_phase_matrix(shape, beta, "white", field)
    return black @ white
