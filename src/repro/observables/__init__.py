"""Physics observables, exact references and MCMC error analysis."""

from .binder import (
    binder_cumulant,
    binder_from_moments,
    replica_overlap,
    spin_glass_binder,
)
from .correlation import correlation_function, correlation_length, susceptibility
from .energy import energy_per_spin, specific_heat, total_energy
from .exact import (
    boltzmann_distribution,
    checkerboard_phase_matrix,
    checkerboard_sweep_matrix,
    enumerate_states,
    exact_observables,
)
from .magnetization import abs_magnetization, magnetization
from .onsager import (
    BETA_CRITICAL,
    T_CRITICAL,
    critical_temperature,
    internal_energy,
    spontaneous_magnetization,
)
from .stats import (
    binder_jackknife,
    blocking_error,
    effective_sample_size,
    integrated_autocorrelation_time,
    jackknife,
)

__all__ = [
    "binder_cumulant",
    "binder_from_moments",
    "replica_overlap",
    "spin_glass_binder",
    "correlation_function",
    "correlation_length",
    "susceptibility",
    "energy_per_spin",
    "specific_heat",
    "total_energy",
    "boltzmann_distribution",
    "checkerboard_phase_matrix",
    "checkerboard_sweep_matrix",
    "enumerate_states",
    "exact_observables",
    "abs_magnetization",
    "magnetization",
    "BETA_CRITICAL",
    "T_CRITICAL",
    "critical_temperature",
    "internal_energy",
    "spontaneous_magnetization",
    "binder_jackknife",
    "blocking_error",
    "effective_sample_size",
    "integrated_autocorrelation_time",
    "jackknife",
]
