"""Spatial correlation functions and the magnetic susceptibility.

Extensions beyond the paper's reported observables, of the kind any
downstream statistical-physics user needs: the two-point connected
correlation function G(r) (FFT-accelerated, azimuthally averaged along
the axes), an exponential-fit correlation length, and the susceptibility
``chi = beta * N * (<m^2> - <|m|>^2)``, which peaks at the (finite-size)
critical temperature.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "correlation_function",
    "correlation_length",
    "susceptibility",
]


def correlation_function(plain: np.ndarray, max_distance: int | None = None) -> np.ndarray:
    """Connected two-point correlation ``G(r)`` along the lattice axes.

    ``G(r) = <sigma_0 sigma_r> - <sigma>^2`` averaged over all sites and
    both axis directions, computed with one FFT per axis.  Returns the
    array ``G[0..max_distance]`` (``G[0] = 1 - <sigma>^2``).
    """
    sigma = np.asarray(plain, dtype=np.float64)
    if sigma.ndim != 2:
        raise ValueError(f"expected a 2D lattice, got shape {sigma.shape}")
    rows, cols = sigma.shape
    if max_distance is None:
        max_distance = min(rows, cols) // 2
    if not 0 <= max_distance <= min(rows, cols) // 2:
        raise ValueError(
            f"max_distance must be in [0, {min(rows, cols) // 2}], got {max_distance}"
        )
    mean = sigma.mean()

    # <sigma_0 sigma_r> along an axis via the Wiener-Khinchin theorem.
    def axis_correlation(axis: int) -> np.ndarray:
        f = np.fft.fft(sigma, axis=axis)
        acf = np.fft.ifft(f * np.conj(f), axis=axis).real
        acf /= sigma.shape[axis]
        return acf.mean(axis=1 - axis)

    corr_rows = axis_correlation(0)[: max_distance + 1]
    corr_cols = axis_correlation(1)[: max_distance + 1]
    return (corr_rows + corr_cols) / 2.0 - mean * mean


def correlation_length(g: np.ndarray) -> float:
    """Correlation length from a log-linear fit of ``G(r) ~ exp(-r/xi)``.

    Fits over the positive, decreasing prefix of ``G``; raises if fewer
    than three usable points exist (e.g. deep in the disordered phase on
    a tiny lattice where G dives below zero immediately).
    """
    g = np.asarray(g, dtype=np.float64)
    usable = 1
    while usable < g.size and g[usable] > 0 and g[usable] < g[usable - 1]:
        usable += 1
    if usable < 3:
        raise ValueError(
            "need at least 3 positive decreasing G(r) points for a fit"
        )
    r = np.arange(usable)
    slope = np.polyfit(r, np.log(g[:usable]), 1)[0]
    if slope >= 0:
        raise ValueError("G(r) does not decay; correlation length undefined")
    return float(-1.0 / slope)


def susceptibility(m_samples: np.ndarray, beta: float, n_sites: int) -> float:
    """``chi = beta * N * (<m^2> - <|m|>^2)`` from magnetization samples.

    Uses ``<|m|>`` (the standard finite-size convention) so chi stays
    finite and peaked near Tc instead of diverging from the symmetry of
    +-m in the ordered phase.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if n_sites <= 0:
        raise ValueError(f"n_sites must be positive, got {n_sites}")
    m = np.asarray(m_samples, dtype=np.float64)
    if m.size == 0:
        raise ValueError("need at least one magnetization sample")
    return float(beta * n_sites * (np.mean(m * m) - np.mean(np.abs(m)) ** 2))
