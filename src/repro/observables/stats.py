"""Statistical error analysis for correlated MCMC time series.

Checkerboard Metropolis samples are strongly autocorrelated near Tc, so
naive standard errors are badly optimistic.  This module provides the
standard toolkit: blocking (binning) analysis, the integrated
autocorrelation time, and jackknife errors for nonlinear functions of
moments such as the Binder cumulant.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "blocking_error",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "jackknife",
    "binder_jackknife",
]


def blocking_error(samples: np.ndarray, n_blocks: int = 32) -> tuple[float, float]:
    """Mean and blocked standard error of a correlated series.

    The series is cut into ``n_blocks`` contiguous blocks; block means are
    approximately independent once blocks exceed the autocorrelation time,
    so their scatter gives an honest error bar.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    if x.size < n_blocks:
        raise ValueError(f"need >= {n_blocks} samples, got {x.size}")
    usable = (x.size // n_blocks) * n_blocks
    blocks = x[:usable].reshape(n_blocks, -1).mean(axis=1)
    err = blocks.std(ddof=1) / np.sqrt(n_blocks)
    return float(x.mean()), float(err)


def integrated_autocorrelation_time(
    samples: np.ndarray, window_factor: float = 6.0
) -> float:
    """Integrated autocorrelation time tau with automatic windowing.

    Uses the Sokal self-consistent window: sum rho(t) until the window
    exceeds ``window_factor * tau``.  tau = 0.5 for independent samples
    under the convention tau = 1/2 + sum_{t>=1} rho(t).
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    n = x.size
    if n < 4:
        raise ValueError(f"need >= 4 samples, got {n}")
    x = x - x.mean()
    var = float(np.dot(x, x)) / n
    if var == 0.0:
        return 0.5
    # FFT-based autocovariance.
    size = 1 << (2 * n - 1).bit_length()
    f = np.fft.rfft(x, size)
    acov = np.fft.irfft(f * np.conjugate(f), size)[:n].real / n
    rho = acov / acov[0]
    tau = 0.5
    for t in range(1, n):
        tau += float(rho[t])
        if t >= window_factor * tau:
            break
    return max(tau, 0.5)


def effective_sample_size(samples: np.ndarray) -> float:
    """N_eff = N / (2 tau): the number of effectively independent samples."""
    x = np.asarray(samples, dtype=np.float64).ravel()
    tau = integrated_autocorrelation_time(x)
    return x.size / (2.0 * tau)


def jackknife(samples: np.ndarray, estimator, n_blocks: int = 32) -> tuple[float, float]:
    """Delete-one-block jackknife estimate and error of any estimator.

    ``estimator`` maps a 1D sample array to a float; blocking makes the
    jackknife robust to autocorrelation.
    """
    x = np.asarray(samples, dtype=np.float64).ravel()
    if x.size < n_blocks:
        raise ValueError(f"need >= {n_blocks} samples, got {x.size}")
    usable = (x.size // n_blocks) * n_blocks
    blocks = x[:usable].reshape(n_blocks, -1)
    full = float(estimator(blocks.ravel()))
    leave_one_out = np.array(
        [
            estimator(np.delete(blocks, k, axis=0).ravel())
            for k in range(n_blocks)
        ],
        dtype=np.float64,
    )
    mean_loo = leave_one_out.mean()
    err = np.sqrt((n_blocks - 1) * np.mean((leave_one_out - mean_loo) ** 2))
    estimate = n_blocks * full - (n_blocks - 1) * mean_loo
    return float(estimate), float(err)


def binder_jackknife(m_samples: np.ndarray, n_blocks: int = 32) -> tuple[float, float]:
    """Jackknife estimate and error of the Binder cumulant U4."""

    def u4(x: np.ndarray) -> float:
        m2 = np.mean(x * x)
        m4 = np.mean(x**4)
        return 1.0 - m4 / (3.0 * m2 * m2)

    return jackknife(m_samples, u4, n_blocks=n_blocks)
