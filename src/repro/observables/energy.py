"""Energy observables for the zero-field J = 1 Ising Hamiltonian.

``H(sigma) = -sum_<ij> sigma_i sigma_j`` over nearest-neighbour pairs on
the torus; each pair is counted once, so summing ``sigma_i * nn(i)`` over
all sites double-counts and the 1/2 factor restores pair counting.  On a
side-2 torus a site meets the same neighbour twice — the enumeration-based
tests use exactly this convention so comparisons are consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["total_energy", "energy_per_spin", "specific_heat"]


def total_energy(plain: np.ndarray) -> float:
    """Total configuration energy ``H(sigma)``."""
    # Summing over the two forward directions counts each bond exactly once
    # (self-contained here to keep observables independent of repro.core).
    sigma = plain.astype(np.float64)
    nn_forward = np.roll(sigma, -1, axis=0) + np.roll(sigma, -1, axis=1)
    return float(-np.sum(sigma * nn_forward))


def energy_per_spin(plain: np.ndarray) -> float:
    """Energy per site, in [-2, 2] for the square lattice."""
    return total_energy(plain) / plain.size


def specific_heat(e_samples: np.ndarray, beta: float, n_sites: int) -> float:
    """``c = beta^2 * N * (<e^2> - <e>^2)`` from per-site energy samples.

    The specific heat per site diverges logarithmically at Tc in the
    thermodynamic limit (Onsager); on finite lattices it shows a peak
    near Tc that sharpens with size — a standard transition locator
    complementary to the susceptibility.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if n_sites <= 0:
        raise ValueError(f"n_sites must be positive, got {n_sites}")
    e = np.asarray(e_samples, dtype=np.float64)
    if e.size == 0:
        raise ValueError("need at least one energy sample")
    return float(beta * beta * n_sites * (np.mean(e * e) - np.mean(e) ** 2))
