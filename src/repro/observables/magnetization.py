"""Magnetization observables.

The paper's first correctness check (Fig. 4 top) is the average
magnetization per spin, ``m(T) = <sigma> = (1/N) sum_i sigma_i``; on a
finite lattice below Tc the distribution of m is bimodal around the
spontaneous values, so the convention (also used in finite-size-scaling
practice) is to average ``|m|``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["magnetization", "abs_magnetization"]


def magnetization(plain: np.ndarray) -> float:
    """Signed magnetization per spin, in [-1, 1]."""
    return float(np.mean(plain, dtype=np.float64))


def abs_magnetization(plain: np.ndarray) -> float:
    """Absolute magnetization per spin, in [0, 1]."""
    return float(abs(np.mean(plain, dtype=np.float64)))
