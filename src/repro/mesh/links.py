"""Timing model of the pod's inter-chip interconnect.

The paper's measurements (Tables 3-4) show ``collective_permute`` time is
*latency dominated*, not bandwidth bound: it grows with the number of
participating cores (lockstep synchronisation across a mesh whose
diameter grows like sqrt(N)) and only mildly with the edge size (the
largest edge, 229 KiB, would take ~0.023 ms at a moderate 10 GB/s —
comparable to the observed totals).  The model is therefore

``t = base_latency + sync_per_sqrt_core * sqrt(n_cores) + bytes * serialization``

*per permute op*.  One compact sweep issues eight permutes (four halo
directions x two colour phases), so the constants are fit such that the
eight-permute per-sweep total matches the paper's Table 4 grid:
c0 = 2.9 us, c1 = 2.06 us, and an effective serialization of ~2.7 GB/s
per edge.  Within the table's range the modeled per-sweep totals
reproduce the measured 0.18-0.65 ms to ~25%.

Fault charging: injected faults (``repro.mesh.faults``) flow through the
same accounting.  A delayed or stalled collective charges
``permute_time(...) + injected seconds`` to every core; a failed
delivery attempt charges the retry policy's detection timeout plus
backoff.  Degraded runs therefore produce the same honest Table 3/4
style compute-vs-communication breakdowns as clean ones — the fault tax
shows up in the ``communication`` category rather than vanishing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .topology import HierarchicalTorus, Torus2D

__all__ = ["LinkModel", "TwoTierLinkModel", "interior_fraction"]


def interior_fraction(local_shape: tuple[int, int]) -> float:
    """Fraction of one colour phase's sites that need no halo data.

    Per colour phase a core updates ``lr * lc / 2`` of its local sites;
    the only ones whose neighbour sums consume an in-flight halo are
    those on the four boundary lines of the local lattice — ``lc/2``
    phase sites on each boundary row, ``lr/2`` on each boundary column,
    with the phase's two corners counted once — ``lr + lc - 2`` sites in
    total.  Everything else is *interior* and can be updated while the
    halo ``collective_permute`` is still in flight, which is the
    surface-to-volume ratio the split-phase overlap schedule charges:
    interior work scales with area, halo-dependent work with perimeter.

    Degenerates gracefully: a 2x2 local lattice is all boundary
    (fraction 0.0 — nothing can hide), and the fraction approaches 1.0
    for the paper's superdense per-core lattices.
    """
    lr, lc = local_shape
    if lr <= 0 or lc <= 0:
        raise ValueError(f"local shape must be positive, got {local_shape}")
    boundary = lr + lc - 2
    phase_sites = lr * lc / 2.0
    return max(0.0, 1.0 - boundary / phase_sites)


@dataclass(frozen=True)
class LinkModel:
    """Calibrated collective_permute timing on the 2D toroidal mesh."""

    base_latency: float = 2.9e-6
    sync_per_sqrt_core: float = 2.06e-6
    serialization_s_per_byte: float = 3.68e-10

    def permute_time(self, n_cores: int, bytes_per_edge: float) -> float:
        """Modeled seconds for one collective_permute across the slice."""
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        if bytes_per_edge < 0:
            raise ValueError(f"bytes_per_edge must be >= 0, got {bytes_per_edge}")
        return (
            self.base_latency
            + self.sync_per_sqrt_core * math.sqrt(n_cores)
            + self.serialization_s_per_byte * bytes_per_edge
        )

    def permute_time_on(
        self, topology: Torus2D, pairs, bytes_per_edge: float
    ) -> float:
        """Permute time for a concrete collective on a concrete topology.

        The flat model has a single tier, so this is
        :meth:`permute_time` over the whole slice regardless of which
        pairs the collective names; :class:`TwoTierLinkModel` overrides
        it to price pod-crossing collectives on the slower tier.
        """
        return self.permute_time(topology.num_cores, bytes_per_edge)


@dataclass(frozen=True)
class TwoTierLinkModel(LinkModel):
    """Two-tier interconnect: intra-pod torus links plus inter-pod links.

    The inherited fields are the *intra-pod* tier — the Table 4 fit,
    unchanged, with the lockstep-sync term growing with the sub-pod's
    core count (that is the mesh whose diameter the intra-pod barrier
    crosses).  A collective whose pair list stays inside every sub-pod
    therefore costs exactly what today's flat model charges a pod of
    that size, which is the calibration contract: on a single-pod
    :class:`~repro.mesh.topology.HierarchicalTorus` (or a flat
    :class:`~repro.mesh.topology.Torus2D`) this model reproduces
    :class:`LinkModel` to the digit.

    Collectives with at least one pod-crossing pair additionally pay the
    *inter-pod* tier: a larger base latency (the paper's dedicated
    in-pod mesh gives way to inter-pod links that cross switch hops), a
    sync term growing with sqrt(#pods) (the pod-level barrier), and a
    ~10x slower serialization — the NVLink-vs-InfiniBand shape of the
    rack-scale follow-up (arXiv:2502.18624), transplanted to pods.
    Lockstep makes the slow tier price the whole collective: everyone
    waits for the slowest edge.
    """

    inter_base_latency: float = 20e-6
    inter_sync_per_sqrt_pod: float = 5e-6
    inter_serialization_s_per_byte: float = 3.68e-9

    def inter_pod_time(self, n_pods: int, bytes_per_edge: float) -> float:
        """Extra modeled seconds a pod-crossing collective pays."""
        if n_pods <= 0:
            raise ValueError(f"n_pods must be positive, got {n_pods}")
        if bytes_per_edge < 0:
            raise ValueError(f"bytes_per_edge must be >= 0, got {bytes_per_edge}")
        return (
            self.inter_base_latency
            + self.inter_sync_per_sqrt_pod * math.sqrt(n_pods)
            + self.inter_serialization_s_per_byte * bytes_per_edge
        )

    def permute_time_on(
        self, topology: Torus2D, pairs, bytes_per_edge: float
    ) -> float:
        if not isinstance(topology, HierarchicalTorus):
            return self.permute_time(topology.num_cores, bytes_per_edge)
        intra = self.permute_time(topology.cores_per_pod, bytes_per_edge)
        if topology.num_pods > 1 and topology.pairs_cross_pods(pairs):
            return intra + self.inter_pod_time(topology.num_pods, bytes_per_edge)
        return intra
