"""Timing model of the pod's inter-chip interconnect.

The paper's measurements (Tables 3-4) show ``collective_permute`` time is
*latency dominated*, not bandwidth bound: it grows with the number of
participating cores (lockstep synchronisation across a mesh whose
diameter grows like sqrt(N)) and only mildly with the edge size (the
largest edge, 229 KiB, would take ~0.023 ms at a moderate 10 GB/s —
comparable to the observed totals).  The model is therefore

``t = base_latency + sync_per_sqrt_core * sqrt(n_cores) + bytes * serialization``

*per permute op*.  One compact sweep issues eight permutes (four halo
directions x two colour phases), so the constants are fit such that the
eight-permute per-sweep total matches the paper's Table 4 grid:
c0 = 2.9 us, c1 = 2.06 us, and an effective serialization of ~2.7 GB/s
per edge.  Within the table's range the modeled per-sweep totals
reproduce the measured 0.18-0.65 ms to ~25%.

Fault charging: injected faults (``repro.mesh.faults``) flow through the
same accounting.  A delayed or stalled collective charges
``permute_time(...) + injected seconds`` to every core; a failed
delivery attempt charges the retry policy's detection timeout plus
backoff.  Degraded runs therefore produce the same honest Table 3/4
style compute-vs-communication breakdowns as clean ones — the fault tax
shows up in the ``communication`` category rather than vanishing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LinkModel"]


@dataclass(frozen=True)
class LinkModel:
    """Calibrated collective_permute timing on the 2D toroidal mesh."""

    base_latency: float = 2.9e-6
    sync_per_sqrt_core: float = 2.06e-6
    serialization_s_per_byte: float = 3.68e-10

    def permute_time(self, n_cores: int, bytes_per_edge: float) -> float:
        """Modeled seconds for one collective_permute across the slice."""
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        if bytes_per_edge < 0:
            raise ValueError(f"bytes_per_edge must be >= 0, got {bytes_per_edge}")
        return (
            self.base_latency
            + self.sync_per_sqrt_core * math.sqrt(n_cores)
            + self.serialization_s_per_byte * bytes_per_edge
        )
