"""Deterministic fault injection for the simulated pod interconnect.

Real pod slices at the paper's 512-2048 TensorCore scale are not the
perfect lockstep mesh the runtime historically modeled: links drop or
delay packets, hosts get preempted (a core stalls and every peer waits,
because the mesh is lockstep), and occasionally a core dies outright.
This module provides the *model* of those failures:

* :class:`FaultEvent` — one scheduled fault: ``drop`` / ``delay`` /
  ``stall`` a collective, ``kill`` a core at a given sweep, or
  ``kill_pod`` an entire sub-pod of a hierarchical mesh.
* :class:`FaultPlan` — an immutable, serializable schedule of events
  plus optional seeded random fault rates; attaching the same plan to
  the same run reproduces the same faults draw-for-draw.
* :class:`RetryPolicy` — bounded retries with exponential backoff and a
  per-collective timeout, the recovery semantics the SPMD runtime
  applies to transient faults.
* :class:`FaultInjector` — the per-run stateful engine the runtime
  consults once per collective.

Fault injection never touches the simulation's Philox streams (random
faults draw from the plan's own dedicated stream), so a run whose
transient faults are all retried successfully stays **bit-identical** to
the fault-free run — only the modeled time and the telemetry counters
(``mesh_retries`` / ``mesh_timeouts`` / ``fault_injected``) change.
Permanent failures surface as :class:`CoreLostError`, which
:meth:`repro.core.distributed.DistributedIsing.run_resilient` turns into
a checkpoint-restart on a degraded topology (see
``docs/fault_tolerance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from ..rng.streams import PhiloxStream

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "FaultInjector",
    "CollectiveFaults",
    "MeshFaultError",
    "CoreLostError",
    "PodLostError",
    "MeshTimeoutError",
]

#: Fault kinds a plan may schedule.
FAULT_KINDS = ("drop", "delay", "stall", "kill", "kill_pod")

#: Stream id of the plan's private Philox stream for random faults.
#: Deliberately far outside the per-core id range (core i uses i + 1)
#: so fault draws can never collide with simulation draws.
_FAULT_STREAM_ID = 0x46415654  # "FAVT"


class MeshFaultError(RuntimeError):
    """Base class for unrecovered mesh failures."""


class CoreLostError(MeshFaultError):
    """A core was permanently lost (killed by the fault plan).

    Carries enough context for the driver to degrade: the dead core's
    linear id, and the sweep / global collective ordinal at detection.
    """

    def __init__(self, core_id: int, sweep: int, collective: int) -> None:
        super().__init__(
            f"core {core_id} lost at sweep {sweep} (collective #{collective})"
        )
        self.core_id = core_id
        self.sweep = sweep
        self.collective = collective


class PodLostError(CoreLostError):
    """An entire sub-pod was permanently lost (killed by the fault plan).

    Raised for ``kill_pod`` events on hierarchical meshes: a whole
    intra-pod torus goes dark at once (rack power loss, pod-slice
    revocation).  Subclasses :class:`CoreLostError` so every existing
    recovery path (``run_resilient`` checkpoint-restart) catches it;
    ``core_id`` is ``None`` because no single core is the victim — the
    driver degrades by dropping the whole pod from the pod grid.
    """

    def __init__(self, pod_id: int, sweep: int, collective: int) -> None:
        # Deliberately skip CoreLostError.__init__ (its message names a
        # single core); keep the attribute contract it established.
        RuntimeError.__init__(
            self,
            f"sub-pod {pod_id} lost at sweep {sweep} (collective #{collective})",
        )
        self.pod_id = pod_id
        self.core_id: "int | None" = None
        self.sweep = sweep
        self.collective = collective


class MeshTimeoutError(MeshFaultError):
    """A collective exhausted its retry budget without completing."""

    def __init__(self, name: str, collective: int, attempts: int) -> None:
        super().__init__(
            f"collective {name!r} (#{collective}) abandoned after "
            f"{attempts} failed attempts — retry budget exhausted"
        )
        self.name = name
        self.collective = collective
        self.attempts = attempts


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Fields
    ------
    kind:
        ``"drop"`` — the collective's delivery fails ``count`` times
        before succeeding (each failure is detected by timeout and
        retried with backoff).
        ``"delay"`` — the collective's successful attempt takes
        ``seconds`` extra modeled time (a slow link); if that pushes the
        attempt over the retry policy's timeout it is treated as a
        failed attempt and retried.
        ``"stall"`` — the named core is preempted for ``seconds``; in a
        lockstep mesh every core waits, so the stall charges the whole
        step (the straggler effect of Tables 3/4 at scale).
        ``"kill"`` — the named core dies permanently at sweep ``sweep``
        (detected at its next collective), raising
        :class:`CoreLostError`.
        ``"kill_pod"`` — the named sub-pod (every core of one intra-pod
        torus on a :class:`~repro.mesh.topology.HierarchicalTorus`) dies
        permanently, raising :class:`PodLostError`.
    collective:
        Global collective ordinal (0-based, as counted by
        ``SPMDRuntime.collectives_executed``) the event fires at.  Drop /
        delay / stall events require it.
    sweep:
        Sweep number a ``kill`` fires at (the driver reports sweeps to
        the injector via :meth:`FaultInjector.begin_sweep`).  A kill may
        alternatively name a ``collective``.
    core:
        Victim core linear id (required for ``stall`` and ``kill``;
        informational for link events).
    pod:
        Victim sub-pod linear id (required for ``kill_pod``).
    count:
        For ``drop``: number of consecutive failed deliveries.
    seconds:
        For ``delay`` / ``stall``: extra modeled seconds.
    """

    kind: str
    collective: int | None = None
    sweep: int | None = None
    core: int | None = None
    count: int = 1
    seconds: float = 0.0
    pod: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind == "kill":
            if self.core is None:
                raise ValueError("kill events must name a core")
            if self.sweep is None and self.collective is None:
                raise ValueError("kill events need a sweep or collective trigger")
        elif self.kind == "kill_pod":
            if self.pod is None:
                raise ValueError("kill_pod events must name a pod")
            if self.sweep is None and self.collective is None:
                raise ValueError(
                    "kill_pod events need a sweep or collective trigger"
                )
        elif self.collective is None:
            raise ValueError(f"{self.kind} events must name a collective ordinal")
        if self.kind == "drop" and self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")
        if self.kind in ("delay", "stall") and self.seconds <= 0:
            raise ValueError(f"{self.kind} events need seconds > 0, got {self.seconds}")
        if self.kind == "stall" and self.core is None:
            raise ValueError("stall events must name a core")

    def to_json_dict(self) -> dict:
        payload = {"kind": self.kind}
        for key in ("collective", "sweep", "core", "pod"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = int(value)
        if self.kind == "drop":
            payload["count"] = int(self.count)
        if self.kind in ("delay", "stall"):
            payload["seconds"] = float(self.seconds)
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultEvent":
        return cls(
            kind=payload["kind"],
            collective=payload.get("collective"),
            sweep=payload.get("sweep"),
            core=payload.get("core"),
            count=int(payload.get("count", 1)),
            seconds=float(payload.get("seconds", 0.0)),
            pod=payload.get("pod"),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry semantics for transient collective failures.

    A failed delivery attempt (dropped message, or an attempt whose
    modeled duration exceeds ``timeout_seconds``) charges the timeout
    plus an exponential backoff of ``backoff_base * 2**attempt`` modeled
    seconds, then the collective is re-issued.  After ``max_retries``
    failed attempts the collective is abandoned with
    :class:`MeshTimeoutError`.
    """

    max_retries: int = 3
    backoff_base: float = 5e-6
    timeout_seconds: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )

    def backoff(self, attempt: int) -> float:
        """Modeled backoff before re-issuing attempt ``attempt`` (1-based)."""
        return self.backoff_base * (2.0 ** (attempt - 1))

    def to_json_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "timeout_seconds": self.timeout_seconds,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RetryPolicy":
        return cls(
            max_retries=int(payload.get("max_retries", 3)),
            backoff_base=float(payload.get("backoff_base", 5e-6)),
            timeout_seconds=float(payload.get("timeout_seconds", 1e-3)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reproducible schedule of mesh faults.

    Attach one to a :class:`~repro.core.distributed.DistributedIsing`
    (or directly to an :class:`~repro.mesh.runtime.SPMDRuntime`) to run
    under injected faults.  The same plan against the same run produces
    the same faults: scheduled events fire at fixed collective ordinals
    / sweeps, and random faults draw from a private Philox stream keyed
    by ``seed`` — never from the simulation's streams.

    Parameters
    ----------
    events:
        Scheduled :class:`FaultEvent` instances.
    drop_rate:
        Per-collective probability of one transient drop (seeded).
    delay_rate, delay_seconds:
        Per-collective probability of an injected delay, and its size.
    seed:
        Seed of the plan's private fault stream.
    retry:
        The :class:`RetryPolicy` the runtime applies under this plan.
    """

    events: tuple[FaultEvent, ...] = ()
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 50e-6
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for name in ("drop_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    @property
    def has_random_faults(self) -> bool:
        return self.drop_rate > 0.0 or self.delay_rate > 0.0

    def with_events(self, extra: Iterable[FaultEvent]) -> "FaultPlan":
        """A copy of this plan with additional scheduled events."""
        return replace(self, events=self.events + tuple(extra))

    def to_json_dict(self) -> dict:
        return {
            "events": [event.to_json_dict() for event in self.events],
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "seed": self.seed,
            "retry": self.retry.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_json_dict(e) for e in payload.get("events", ())
            ),
            drop_rate=float(payload.get("drop_rate", 0.0)),
            delay_rate=float(payload.get("delay_rate", 0.0)),
            delay_seconds=float(payload.get("delay_seconds", 50e-6)),
            seed=int(payload.get("seed", 0)),
            retry=RetryPolicy.from_json_dict(payload.get("retry", {})),
        )


@dataclass
class CollectiveFaults:
    """The injector's verdict for one collective: what goes wrong.

    ``drops`` failed delivery attempts precede the successful one, whose
    duration is extended by ``delay_seconds`` (slow link) and
    ``stall_seconds`` (preempted peer; lockstep makes everyone wait).
    """

    drops: int = 0
    delay_seconds: float = 0.0
    stall_seconds: float = 0.0
    injected: int = 0

    @property
    def any(self) -> bool:
        return self.injected > 0


class FaultInjector:
    """Per-run fault engine: consulted by the runtime once per collective.

    The injector owns all mutable fault state — which scheduled events
    have fired, how many random draws were consumed, which cores are
    dead — so a :class:`FaultPlan` stays immutable and reusable across
    runs.  Drivers report sweep boundaries via :meth:`begin_sweep` (this
    is how sweep-triggered kills find their trigger point).
    """

    def __init__(self, plan: FaultPlan, n_cores: int) -> None:
        self.plan = plan
        self.retry = plan.retry
        self.n_cores = int(n_cores)
        self.sweep = 0
        self.injected_total = 0
        self.dead_cores: set[int] = set()
        self.dead_pods: set[int] = set()
        self._fired: set[int] = set()  # indices into plan.events
        self._stream = (
            PhiloxStream(plan.seed, _FAULT_STREAM_ID)
            if plan.has_random_faults
            else None
        )

    def begin_sweep(self, sweep: int) -> None:
        """Report the sweep about to run (enables sweep-triggered kills)."""
        self.sweep = int(sweep)

    def collective_faults(self, collective: int) -> CollectiveFaults:
        """Faults afflicting global collective ordinal ``collective``.

        Raises :class:`CoreLostError` if a kill triggers here; otherwise
        returns the transient faults the runtime must model.  Each call
        consumes this ordinal's scheduled events and (when the plan has
        random rates) exactly two uniforms from the plan's private
        stream, keeping the schedule deterministic under retries.
        """
        verdict = CollectiveFaults()
        for idx, event in enumerate(self.plan.events):
            if idx in self._fired:
                continue
            if event.kind in ("kill", "kill_pod"):
                triggered = (
                    event.collective == collective
                    if event.collective is not None
                    else self.sweep >= event.sweep
                )
                if triggered:
                    self._fired.add(idx)
                    self.injected_total += 1
                    if event.kind == "kill_pod":
                        self.dead_pods.add(event.pod)
                        raise PodLostError(event.pod, self.sweep, collective)
                    self.dead_cores.add(event.core)
                    raise CoreLostError(event.core, self.sweep, collective)
                continue
            if event.collective != collective:
                continue
            self._fired.add(idx)
            verdict.injected += 1
            if event.kind == "drop":
                verdict.drops += event.count
            elif event.kind == "delay":
                verdict.delay_seconds += event.seconds
            elif event.kind == "stall":
                verdict.stall_seconds += event.seconds

        if self._stream is not None:
            u_drop, u_delay = self._stream.uniform(2)
            if self.plan.drop_rate > 0.0 and u_drop < self.plan.drop_rate:
                verdict.drops += 1
                verdict.injected += 1
            if self.plan.delay_rate > 0.0 and u_delay < self.plan.delay_rate:
                verdict.delay_seconds += self.plan.delay_seconds
                verdict.injected += 1

        self.injected_total += verdict.injected
        return verdict
