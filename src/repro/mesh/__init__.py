"""Simulated TPU pod interconnect: topology, collectives, SPMD runtime
and deterministic fault injection (see ``docs/fault_tolerance.md`` and,
for the hierarchical multi-pod tier, ``docs/multipod.md``)."""

from .collectives import all_gather, all_reduce, collective_permute, validate_pairs
from .faults import (
    CollectiveFaults,
    CoreLostError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    MeshFaultError,
    MeshTimeoutError,
    PodLostError,
    RetryPolicy,
)
from .links import LinkModel, TwoTierLinkModel, interior_fraction
from .runtime import LockstepError, OverlapCommit, PermuteRequest, SPMDRuntime
from .topology import (
    DIRECTIONS,
    HierarchicalTorus,
    Torus2D,
    degraded_grid,
    degraded_pod_grid,
)

__all__ = [
    "all_gather",
    "all_reduce",
    "collective_permute",
    "validate_pairs",
    "CollectiveFaults",
    "CoreLostError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MeshFaultError",
    "MeshTimeoutError",
    "PodLostError",
    "RetryPolicy",
    "LinkModel",
    "TwoTierLinkModel",
    "interior_fraction",
    "LockstepError",
    "OverlapCommit",
    "PermuteRequest",
    "SPMDRuntime",
    "DIRECTIONS",
    "HierarchicalTorus",
    "Torus2D",
    "degraded_grid",
    "degraded_pod_grid",
]
