"""Simulated TPU pod interconnect: topology, collectives, SPMD runtime
and deterministic fault injection (see ``docs/fault_tolerance.md``)."""

from .collectives import all_gather, all_reduce, collective_permute, validate_pairs
from .faults import (
    CollectiveFaults,
    CoreLostError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    MeshFaultError,
    MeshTimeoutError,
    RetryPolicy,
)
from .links import LinkModel
from .runtime import LockstepError, PermuteRequest, SPMDRuntime
from .topology import DIRECTIONS, Torus2D, degraded_grid

__all__ = [
    "all_gather",
    "all_reduce",
    "collective_permute",
    "validate_pairs",
    "CollectiveFaults",
    "CoreLostError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MeshFaultError",
    "MeshTimeoutError",
    "RetryPolicy",
    "LinkModel",
    "LockstepError",
    "PermuteRequest",
    "SPMDRuntime",
    "DIRECTIONS",
    "Torus2D",
    "degraded_grid",
]
