"""Simulated TPU pod interconnect: topology, collectives and SPMD runtime."""

from .collectives import all_gather, all_reduce, collective_permute, validate_pairs
from .links import LinkModel
from .runtime import LockstepError, PermuteRequest, SPMDRuntime
from .topology import DIRECTIONS, Torus2D

__all__ = [
    "all_gather",
    "all_reduce",
    "collective_permute",
    "validate_pairs",
    "LinkModel",
    "LockstepError",
    "PermuteRequest",
    "SPMDRuntime",
    "DIRECTIONS",
    "Torus2D",
]
