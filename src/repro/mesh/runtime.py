"""Lockstep SPMD execution of per-core programs in a single process.

TPU programs are SIMD: every core runs the same program, and collectives
are synchronisation points where all cores block until the exchange
completes.  We reproduce those semantics with generators: a per-core
program is a generator that ``yield``s :class:`PermuteRequest` objects
and receives the permuted tensor back from the runtime.  The runtime
advances every core to its next collective, checks that all cores issued
the *same* collective (a real SPMD program cannot diverge — violating
this raises :class:`LockstepError`), performs the data movement, and
charges the modeled communication time to each core's profiler.

Compute between collectives runs inside the generators, so any
TPUBackend charges land on the right core automatically.  An optional
:class:`~repro.telemetry.metrics.MetricsRegistry` additionally books
collective counts, bytes and modeled seconds for run reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from ..tpu.tensorcore import TensorCore
from .collectives import collective_permute
from .links import LinkModel
from .topology import Torus2D

__all__ = ["PermuteRequest", "LockstepError", "SPMDRuntime"]


@dataclass
class PermuteRequest:
    """A core's collective_permute call: its operand and the global pairs."""

    tensor: np.ndarray
    pairs: tuple[tuple[int, int], ...]
    name: str = "collective_permute"


class LockstepError(RuntimeError):
    """Raised when per-core programs diverge at a collective."""


class SPMDRuntime:
    """Drives one generator program per core in lockstep.

    Parameters
    ----------
    torus:
        Core topology (defines the id space for permute pairs).
    link_model:
        Interconnect timing model for communication charges.
    cores:
        Optional simulated TensorCores (one per torus position) whose
        profilers receive communication time; pure-physics runs can omit
        them.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`.  When
        attached, every collective books ``collectives_total``,
        ``collective_bytes_total`` (payload bytes per participating core)
        and the modeled ``collective_seconds`` histogram.  ``None`` (the
        default) keeps the lockstep loop free of metric calls.
    """

    def __init__(
        self,
        torus: Torus2D,
        link_model: LinkModel | None = None,
        cores: list[TensorCore] | None = None,
        metrics=None,
    ) -> None:
        self.torus = torus
        self.link_model = link_model if link_model is not None else LinkModel()
        if cores is not None and len(cores) != torus.num_cores:
            raise ValueError(
                f"{len(cores)} cores given for a {torus.num_cores}-core torus"
            )
        self.cores = cores
        self.metrics = metrics
        self.collectives_executed = 0

    def run(
        self, make_program: Callable[[int], Generator[PermuteRequest, np.ndarray, Any]]
    ) -> list[Any]:
        """Execute ``make_program(core_id)`` on every core; return results.

        Each program may yield any number of PermuteRequests; all cores
        must yield matching collectives (same pairs) and finish together.
        """
        n = self.torus.num_cores
        programs = [make_program(core_id) for core_id in range(n)]
        results: list[Any] = [None] * n

        # Advance every program to its first yield (or completion).
        pending: list[PermuteRequest | None] = [None] * n
        finished = [False] * n
        for cid, program in enumerate(programs):
            try:
                pending[cid] = next(program)
            except StopIteration as stop:
                finished[cid] = True
                results[cid] = stop.value

        while not all(finished):
            if any(finished):
                early = [c for c, f in enumerate(finished) if f]
                raise LockstepError(
                    f"cores {early} finished while others are blocked on a "
                    "collective — SPMD programs must not diverge"
                )
            requests = [req for req in pending if req is not None]
            pairs = requests[0].pairs
            for cid, req in enumerate(requests):
                if req.pairs != pairs:
                    raise LockstepError(
                        f"core {cid} issued pairs {req.pairs} while core 0 "
                        f"issued {pairs} — collective specs must be globally identical"
                    )

            received = collective_permute([req.tensor for req in requests], pairs)
            self.collectives_executed += 1
            self._charge_communication(requests[0])

            for cid, program in enumerate(programs):
                try:
                    pending[cid] = program.send(received[cid])
                except StopIteration as stop:
                    finished[cid] = True
                    pending[cid] = None
                    results[cid] = stop.value
        return results

    def _charge_communication(self, request: PermuteRequest) -> None:
        bytes_per_edge = float(request.tensor.nbytes)
        if self.metrics is not None:
            self.metrics.counter("collectives_total").inc()
            self.metrics.counter("collective_bytes_total").inc(bytes_per_edge)
        if self.cores is None:
            return
        seconds = self.link_model.permute_time(self.torus.num_cores, bytes_per_edge)
        if self.metrics is not None:
            self.metrics.histogram("collective_seconds").observe(seconds)
        for core in self.cores:
            core.charge_communication(
                seconds, bytes_moved=bytes_per_edge, name=request.name
            )
