"""Lockstep SPMD execution of per-core programs in a single process.

TPU programs are SIMD: every core runs the same program, and collectives
are synchronisation points where all cores block until the exchange
completes.  We reproduce those semantics with generators: a per-core
program is a generator that ``yield``s :class:`PermuteRequest` objects
and receives the permuted tensor back from the runtime.  The runtime
advances every core to its next collective, checks that all cores issued
the *same* collective (a real SPMD program cannot diverge — violating
this raises :class:`LockstepError`), performs the data movement, and
charges the modeled communication time to each core's profiler.

Compute between collectives runs inside the generators, so any
TPUBackend charges land on the right core automatically.  An optional
:class:`~repro.telemetry.metrics.MetricsRegistry` additionally books
collective counts, bytes and modeled seconds for run reports.

Split-phase overlap: a program may flag halo permutes with
``overlap=True`` and later yield an :class:`OverlapCommit` carrying the
interior compute it performed while those halos were notionally in
flight.  The runtime executes overlap permutes *identically* to blocking
ones (same data movement, same lockstep order — the chain stays
bit-identical) but defers their modeled link time into a window; at the
commit it charges only ``max(0, window_comm - interior_seconds)`` as
exposed communication, turning the per-phase cost into
``max(interior_compute, comm) + boundary_compute``.  Window outcomes are
recorded in :attr:`SPMDRuntime.overlap_log` and the
``halo_overlap_windows_total`` / ``halo_overlap_hidden_seconds_total`` /
``halo_overlap_exposed_seconds_total`` counters.

Fault tolerance: with a :class:`~repro.mesh.faults.FaultInjector`
attached, every collective first asks the injector what goes wrong.
Transient failures (dropped or over-timeout deliveries) are retried with
exponential backoff under the plan's :class:`~repro.mesh.faults.RetryPolicy`
— each failed attempt charges the timeout plus backoff through the link
model, books ``mesh_retries`` / ``mesh_timeouts`` /``fault_injected``
counters, and records a span in :attr:`SPMDRuntime.fault_log` (exported
as a dedicated mesh track by :func:`repro.telemetry.trace.chrome_trace`).
A collective that exhausts its retry budget raises
:class:`~repro.mesh.faults.MeshTimeoutError`; a permanent core kill
surfaces as :class:`~repro.mesh.faults.CoreLostError`.  Without an
injector the collective path is exactly the historical one — a single
``is None`` branch (asserted <2% by ``benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from ..tpu.tensorcore import TensorCore
from .collectives import collective_permute
from .faults import CollectiveFaults, FaultInjector, FaultPlan, MeshTimeoutError
from .links import LinkModel
from .topology import Torus2D

__all__ = ["PermuteRequest", "OverlapCommit", "LockstepError", "SPMDRuntime"]


@dataclass
class PermuteRequest:
    """A core's collective_permute call: its operand and the global pairs.

    With ``overlap=True`` the runtime still moves the data immediately
    (the receiving program gets its halo back from the ``yield`` exactly
    as in the blocking schedule — same tensors, same order, which is
    what keeps the chain bit-identical), but the modeled link time is
    *deferred* into the current overlap window instead of charged on the
    spot.  The program must later yield an :class:`OverlapCommit` to
    close the window; only the communication time the interior compute
    could not hide is then charged.
    """

    tensor: np.ndarray
    pairs: tuple[tuple[int, int], ...]
    name: str = "collective_permute"
    overlap: bool = False


@dataclass
class OverlapCommit:
    """Closes an overlap window: the halos issued with ``overlap=True``
    have landed and the phase's boundary updates are about to run.

    ``interior_seconds`` is this core's modeled compute that ran while
    the halos were in flight (the interior-site updates of the
    split-phase schedule).  The runtime charges
    ``max(0, window_comm - interior_seconds)`` as *exposed*
    communication — i.e. the per-phase cost becomes
    ``max(interior_compute, comm) + boundary_compute`` instead of the
    blocking ``comm + compute``.
    """

    interior_seconds: float
    name: str = "halo_overlap"


class LockstepError(RuntimeError):
    """Raised when per-core programs diverge at a collective."""


class SPMDRuntime:
    """Drives one generator program per core in lockstep.

    Parameters
    ----------
    torus:
        Core topology (defines the id space for permute pairs).
    link_model:
        Interconnect timing model for communication charges.
    cores:
        Optional simulated TensorCores (one per torus position) whose
        profilers receive communication time; pure-physics runs can omit
        them.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`.  When
        attached, every collective books ``collectives_total``,
        ``collective_bytes_total`` (payload bytes per participating core)
        and the modeled ``collective_seconds`` histogram.  ``None`` (the
        default) keeps the lockstep loop free of metric calls.
    fault_injector:
        Optional :class:`~repro.mesh.faults.FaultInjector` (or a
        :class:`~repro.mesh.faults.FaultPlan`, from which an injector is
        built).  ``None`` (the default) keeps the historical perfect-mesh
        collective path.
    """

    def __init__(
        self,
        torus: Torus2D,
        link_model: LinkModel | None = None,
        cores: list[TensorCore] | None = None,
        metrics=None,
        fault_injector: "FaultInjector | FaultPlan | None" = None,
    ) -> None:
        self.torus = torus
        self.link_model = link_model if link_model is not None else LinkModel()
        if cores is not None and len(cores) != torus.num_cores:
            raise ValueError(
                f"{len(cores)} cores given for a {torus.num_cores}-core torus"
            )
        self.cores = cores
        self.metrics = metrics
        if isinstance(fault_injector, FaultPlan):
            fault_injector = FaultInjector(fault_injector, torus.num_cores)
        self.fault_injector = fault_injector
        self.collectives_executed = 0
        #: Retry / fault spans on the modeled timeline:
        #: ``{"name", "collective", "start", "duration"}`` dicts, consumed
        #: by :func:`repro.telemetry.trace.chrome_trace` as a mesh track.
        self.fault_log: list[dict] = []
        #: Committed overlap windows on the modeled timeline:
        #: ``{"name", "start", "duration", "comm_seconds", "hidden_seconds",
        #: "exposed_seconds", "permutes"}`` dicts, exported as a
        #: ``halo overlap`` track by :func:`repro.telemetry.trace.chrome_trace`.
        self.overlap_log: list[dict] = []
        self.overlap_windows = 0
        self.overlap_hidden_seconds = 0.0
        self.overlap_exposed_seconds = 0.0
        # Open overlap window: deferred comm seconds/bytes of permutes
        # issued with overlap=True, charged at the next OverlapCommit.
        self._window_seconds = 0.0
        self._window_bytes = 0.0
        self._window_permutes = 0
        # Modeled communication seconds accumulated so far — the time
        # base for fault_log spans (matches the profiler timeline when
        # cores are attached, still monotonic when they are not).
        self._comm_clock = 0.0

    def run(
        self, make_program: Callable[[int], Generator[PermuteRequest, np.ndarray, Any]]
    ) -> list[Any]:
        """Execute ``make_program(core_id)`` on every core; return results.

        Each program may yield any number of PermuteRequests; all cores
        must yield matching collectives (same pairs) and finish together.
        """
        n = self.torus.num_cores
        programs = [make_program(core_id) for core_id in range(n)]
        results: list[Any] = [None] * n

        # Advance every program to its first yield (or completion).
        pending: list[PermuteRequest | None] = [None] * n
        finished = [False] * n
        for cid, program in enumerate(programs):
            try:
                pending[cid] = next(program)
            except StopIteration as stop:
                finished[cid] = True
                results[cid] = stop.value

        while not all(finished):
            if any(finished):
                early = [c for c, f in enumerate(finished) if f]
                raise LockstepError(
                    f"cores {early} finished while others are blocked on a "
                    "collective — SPMD programs must not diverge"
                )
            requests = [req for req in pending if req is not None]
            first = requests[0]
            if isinstance(first, OverlapCommit):
                for cid, req in enumerate(requests):
                    if not isinstance(req, OverlapCommit):
                        raise LockstepError(
                            f"core {cid} issued a collective while core 0 "
                            "committed an overlap window — SPMD programs "
                            "must not diverge"
                        )
                received = self._commit_overlap(requests)
            else:
                pairs = first.pairs
                for cid, req in enumerate(requests):
                    if isinstance(req, OverlapCommit):
                        raise LockstepError(
                            f"core {cid} committed an overlap window while "
                            "core 0 issued a collective — SPMD programs "
                            "must not diverge"
                        )
                    if req.pairs != pairs:
                        raise LockstepError(
                            f"core {cid} issued pairs {req.pairs} while core 0 "
                            f"issued {pairs} — collective specs must be globally identical"
                        )
                received = self._execute_collective(requests)

            for cid, program in enumerate(programs):
                try:
                    pending[cid] = program.send(received[cid])
                except StopIteration as stop:
                    finished[cid] = True
                    pending[cid] = None
                    results[cid] = stop.value
        if self._window_permutes or self._window_seconds:
            raise LockstepError(
                f"programs finished with an open overlap window "
                f"({self._window_permutes} uncommitted overlap permutes) — "
                "every overlap=True PermuteRequest must be followed by an "
                "OverlapCommit before the program returns"
            )
        return results

    def _execute_collective(self, requests: list[PermuteRequest]) -> list[np.ndarray]:
        """Run one collective: fault consultation, retries, data movement.

        The fault-free path (no injector) is the historical one — permute,
        count, charge — behind a single ``is None`` branch.  Under a
        fault plan, failed delivery attempts are modeled *before* the
        data movement: a retried collective delivers exactly the same
        tensors as an unfaulted one (transient faults cost time, never
        data), which is what keeps fault-injected runs bit-identical.
        """
        request = requests[0]
        injector = self.fault_injector
        if injector is None:
            received = collective_permute(
                [req.tensor for req in requests], request.pairs
            )
            self.collectives_executed += 1
            if request.overlap:
                self._defer_communication(request)
            else:
                self._charge_communication(request)
            return received

        ordinal = self.collectives_executed
        # May raise CoreLostError (permanent kill) — propagates to the
        # driver, which degrades via checkpoint-restart.
        faults = injector.collective_faults(ordinal)
        if self.metrics is not None and faults.injected:
            self.metrics.counter("fault_injected").inc(faults.injected)

        policy = injector.retry
        failed_attempts = faults.drops
        delay = faults.delay_seconds
        bytes_per_edge = float(request.tensor.nbytes)
        base_seconds = self.link_model.permute_time_on(
            self.torus, request.pairs, bytes_per_edge
        )
        if delay > 0.0 and base_seconds + delay > policy.timeout_seconds:
            # The slow link trips the per-collective timeout: the delayed
            # attempt is abandoned at the deadline and re-issued; the
            # retry then completes at base speed.
            failed_attempts += 1
            delay = 0.0
            if self.metrics is not None:
                self.metrics.counter("mesh_timeouts").inc()

        if failed_attempts > policy.max_retries:
            self._book_retries(request, ordinal, policy, policy.max_retries)
            if self.metrics is not None:
                self.metrics.counter("mesh_timeouts").inc()
            raise MeshTimeoutError(request.name, ordinal, policy.max_retries + 1)
        if failed_attempts:
            self._book_retries(request, ordinal, policy, failed_attempts)

        received = collective_permute(
            [req.tensor for req in requests], request.pairs
        )
        self.collectives_executed += 1
        extra = delay + faults.stall_seconds
        if request.overlap:
            # Transient slowdowns ride along in the window: a delayed
            # halo is still hideable behind interior compute, exactly
            # like the base link time.  (Retries above were charged
            # immediately — a deadline-detected drop blocks the issuing
            # phase itself, nothing can hide it.)
            self._defer_communication(request, extra_seconds=extra)
            if extra > 0.0:
                self.fault_log.append(
                    {
                        "name": f"fault_extra:{request.name}",
                        "collective": ordinal,
                        "start": self._comm_clock,
                        "duration": extra,
                    }
                )
            return received
        self._charge_communication(request, extra_seconds=extra)
        if extra > 0.0:
            self.fault_log.append(
                {
                    "name": f"fault_extra:{request.name}",
                    "collective": ordinal,
                    "start": self._comm_clock - extra,
                    "duration": extra,
                }
            )
        return received

    def _book_retries(
        self,
        request: PermuteRequest,
        ordinal: int,
        policy,
        n_attempts: int,
    ) -> None:
        """Charge ``n_attempts`` failed deliveries + backoff to every core.

        Each failed attempt costs the full per-collective timeout (drops
        are detected by deadline, not by magic) plus the policy's
        exponential backoff before the re-issue; lockstep means every
        core pays.  Spans land in :attr:`fault_log` so retry storms are
        visible in the exported Chrome trace.
        """
        bytes_per_edge = float(request.tensor.nbytes)
        for attempt in range(1, n_attempts + 1):
            seconds = policy.timeout_seconds + policy.backoff(attempt)
            name = f"retry{attempt}:{request.name}"
            if self.cores is not None:
                for core in self.cores:
                    core.charge_communication(
                        seconds, bytes_moved=bytes_per_edge, name=name
                    )
            self.fault_log.append(
                {
                    "name": name,
                    "collective": ordinal,
                    "start": self._comm_clock,
                    "duration": seconds,
                }
            )
            self._comm_clock += seconds
            if self.metrics is not None:
                self.metrics.counter("mesh_retries").inc()

    def _charge_communication(
        self, request: PermuteRequest, extra_seconds: float = 0.0
    ) -> None:
        bytes_per_edge = float(request.tensor.nbytes)
        if self.metrics is not None:
            self.metrics.counter("collectives_total").inc()
            self.metrics.counter("collective_bytes_total").inc(bytes_per_edge)
        if self.cores is None:
            self._comm_clock += extra_seconds
            return
        seconds = (
            self.link_model.permute_time_on(
                self.torus, request.pairs, bytes_per_edge
            )
            + extra_seconds
        )
        self._comm_clock += seconds
        if self.metrics is not None:
            self.metrics.histogram("collective_seconds").observe(seconds)
        for core in self.cores:
            core.charge_communication(
                seconds, bytes_moved=bytes_per_edge, name=request.name
            )

    def _defer_communication(
        self, request: PermuteRequest, extra_seconds: float = 0.0
    ) -> None:
        """Book an overlap permute's modeled time into the open window.

        The data already moved (the caller permuted before calling us);
        only the *clock* is deferred: the link time joins the window and
        is reconciled against interior compute at the next
        :class:`OverlapCommit`.  Collective counters book immediately —
        the op happened — so fault-plan ordinals and run-report op
        counts are schedule-independent.
        """
        bytes_per_edge = float(request.tensor.nbytes)
        if self.metrics is not None:
            self.metrics.counter("collectives_total").inc()
            self.metrics.counter("collective_bytes_total").inc(bytes_per_edge)
        seconds = (
            self.link_model.permute_time_on(
                self.torus, request.pairs, bytes_per_edge
            )
            + extra_seconds
        )
        if self.metrics is not None:
            self.metrics.histogram("collective_seconds").observe(seconds)
        self._window_seconds += seconds
        self._window_bytes += bytes_per_edge
        self._window_permutes += 1

    def _commit_overlap(self, commits: list[OverlapCommit]) -> list[None]:
        """Close the open overlap window against each core's interior work.

        Lockstep semantics: every core waited on the same permutes, so
        the window's comm total is global; each core hides up to its own
        ``interior_seconds`` of it and pays the remainder as *exposed*
        communication — ``max(interior, comm)`` instead of
        ``interior + comm``.  The aggregate counters track the slowest
        core (the one the modeled step time follows).
        """
        window = self._window_seconds
        window_bytes = self._window_bytes
        n_permutes = self._window_permutes
        self._window_seconds = 0.0
        self._window_bytes = 0.0
        self._window_permutes = 0

        exposed_pod = 0.0
        if self.cores is not None:
            for cid, commit in enumerate(commits):
                interior = max(0.0, float(commit.interior_seconds))
                exposed = max(0.0, window - interior)
                exposed_pod = max(exposed_pod, exposed)
                # Bytes book here rather than per-permute so total comm
                # bytes match the blocking schedule even when the time
                # is fully hidden.
                self.cores[cid].charge_communication(
                    exposed,
                    bytes_moved=window_bytes,
                    name=f"halo_exposed:{commit.name}",
                )
        else:
            interior = max(0.0, float(commits[0].interior_seconds))
            exposed_pod = max(0.0, window - interior)
        hidden_pod = window - exposed_pod

        self.overlap_windows += 1
        self.overlap_hidden_seconds += hidden_pod
        self.overlap_exposed_seconds += exposed_pod
        self.overlap_log.append(
            {
                "name": commits[0].name,
                "start": self._comm_clock,
                "duration": window,
                "comm_seconds": window,
                "hidden_seconds": hidden_pod,
                "exposed_seconds": exposed_pod,
                "permutes": n_permutes,
                "bytes": window_bytes,
            }
        )
        self._comm_clock += exposed_pod
        if self.metrics is not None:
            self.metrics.counter("halo_overlap_windows_total").inc()
            self.metrics.counter("halo_overlap_hidden_seconds_total").inc(
                hidden_pod
            )
            self.metrics.counter("halo_overlap_exposed_seconds_total").inc(
                exposed_pod
            )
        return [None] * len(commits)
