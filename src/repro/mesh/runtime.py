"""Lockstep SPMD execution of per-core programs in a single process.

TPU programs are SIMD: every core runs the same program, and collectives
are synchronisation points where all cores block until the exchange
completes.  We reproduce those semantics with generators: a per-core
program is a generator that ``yield``s :class:`PermuteRequest` objects
and receives the permuted tensor back from the runtime.  The runtime
advances every core to its next collective, checks that all cores issued
the *same* collective (a real SPMD program cannot diverge — violating
this raises :class:`LockstepError`), performs the data movement, and
charges the modeled communication time to each core's profiler.

Compute between collectives runs inside the generators, so any
TPUBackend charges land on the right core automatically.  An optional
:class:`~repro.telemetry.metrics.MetricsRegistry` additionally books
collective counts, bytes and modeled seconds for run reports.

Fault tolerance: with a :class:`~repro.mesh.faults.FaultInjector`
attached, every collective first asks the injector what goes wrong.
Transient failures (dropped or over-timeout deliveries) are retried with
exponential backoff under the plan's :class:`~repro.mesh.faults.RetryPolicy`
— each failed attempt charges the timeout plus backoff through the link
model, books ``mesh_retries`` / ``mesh_timeouts`` /``fault_injected``
counters, and records a span in :attr:`SPMDRuntime.fault_log` (exported
as a dedicated mesh track by :func:`repro.telemetry.trace.chrome_trace`).
A collective that exhausts its retry budget raises
:class:`~repro.mesh.faults.MeshTimeoutError`; a permanent core kill
surfaces as :class:`~repro.mesh.faults.CoreLostError`.  Without an
injector the collective path is exactly the historical one — a single
``is None`` branch (asserted <2% by ``benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from ..tpu.tensorcore import TensorCore
from .collectives import collective_permute
from .faults import CollectiveFaults, FaultInjector, FaultPlan, MeshTimeoutError
from .links import LinkModel
from .topology import Torus2D

__all__ = ["PermuteRequest", "LockstepError", "SPMDRuntime"]


@dataclass
class PermuteRequest:
    """A core's collective_permute call: its operand and the global pairs."""

    tensor: np.ndarray
    pairs: tuple[tuple[int, int], ...]
    name: str = "collective_permute"


class LockstepError(RuntimeError):
    """Raised when per-core programs diverge at a collective."""


class SPMDRuntime:
    """Drives one generator program per core in lockstep.

    Parameters
    ----------
    torus:
        Core topology (defines the id space for permute pairs).
    link_model:
        Interconnect timing model for communication charges.
    cores:
        Optional simulated TensorCores (one per torus position) whose
        profilers receive communication time; pure-physics runs can omit
        them.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`.  When
        attached, every collective books ``collectives_total``,
        ``collective_bytes_total`` (payload bytes per participating core)
        and the modeled ``collective_seconds`` histogram.  ``None`` (the
        default) keeps the lockstep loop free of metric calls.
    fault_injector:
        Optional :class:`~repro.mesh.faults.FaultInjector` (or a
        :class:`~repro.mesh.faults.FaultPlan`, from which an injector is
        built).  ``None`` (the default) keeps the historical perfect-mesh
        collective path.
    """

    def __init__(
        self,
        torus: Torus2D,
        link_model: LinkModel | None = None,
        cores: list[TensorCore] | None = None,
        metrics=None,
        fault_injector: "FaultInjector | FaultPlan | None" = None,
    ) -> None:
        self.torus = torus
        self.link_model = link_model if link_model is not None else LinkModel()
        if cores is not None and len(cores) != torus.num_cores:
            raise ValueError(
                f"{len(cores)} cores given for a {torus.num_cores}-core torus"
            )
        self.cores = cores
        self.metrics = metrics
        if isinstance(fault_injector, FaultPlan):
            fault_injector = FaultInjector(fault_injector, torus.num_cores)
        self.fault_injector = fault_injector
        self.collectives_executed = 0
        #: Retry / fault spans on the modeled timeline:
        #: ``{"name", "collective", "start", "duration"}`` dicts, consumed
        #: by :func:`repro.telemetry.trace.chrome_trace` as a mesh track.
        self.fault_log: list[dict] = []
        # Modeled communication seconds accumulated so far — the time
        # base for fault_log spans (matches the profiler timeline when
        # cores are attached, still monotonic when they are not).
        self._comm_clock = 0.0

    def run(
        self, make_program: Callable[[int], Generator[PermuteRequest, np.ndarray, Any]]
    ) -> list[Any]:
        """Execute ``make_program(core_id)`` on every core; return results.

        Each program may yield any number of PermuteRequests; all cores
        must yield matching collectives (same pairs) and finish together.
        """
        n = self.torus.num_cores
        programs = [make_program(core_id) for core_id in range(n)]
        results: list[Any] = [None] * n

        # Advance every program to its first yield (or completion).
        pending: list[PermuteRequest | None] = [None] * n
        finished = [False] * n
        for cid, program in enumerate(programs):
            try:
                pending[cid] = next(program)
            except StopIteration as stop:
                finished[cid] = True
                results[cid] = stop.value

        while not all(finished):
            if any(finished):
                early = [c for c, f in enumerate(finished) if f]
                raise LockstepError(
                    f"cores {early} finished while others are blocked on a "
                    "collective — SPMD programs must not diverge"
                )
            requests = [req for req in pending if req is not None]
            pairs = requests[0].pairs
            for cid, req in enumerate(requests):
                if req.pairs != pairs:
                    raise LockstepError(
                        f"core {cid} issued pairs {req.pairs} while core 0 "
                        f"issued {pairs} — collective specs must be globally identical"
                    )

            received = self._execute_collective(requests)

            for cid, program in enumerate(programs):
                try:
                    pending[cid] = program.send(received[cid])
                except StopIteration as stop:
                    finished[cid] = True
                    pending[cid] = None
                    results[cid] = stop.value
        return results

    def _execute_collective(self, requests: list[PermuteRequest]) -> list[np.ndarray]:
        """Run one collective: fault consultation, retries, data movement.

        The fault-free path (no injector) is the historical one — permute,
        count, charge — behind a single ``is None`` branch.  Under a
        fault plan, failed delivery attempts are modeled *before* the
        data movement: a retried collective delivers exactly the same
        tensors as an unfaulted one (transient faults cost time, never
        data), which is what keeps fault-injected runs bit-identical.
        """
        request = requests[0]
        injector = self.fault_injector
        if injector is None:
            received = collective_permute(
                [req.tensor for req in requests], request.pairs
            )
            self.collectives_executed += 1
            self._charge_communication(request)
            return received

        ordinal = self.collectives_executed
        # May raise CoreLostError (permanent kill) — propagates to the
        # driver, which degrades via checkpoint-restart.
        faults = injector.collective_faults(ordinal)
        if self.metrics is not None and faults.injected:
            self.metrics.counter("fault_injected").inc(faults.injected)

        policy = injector.retry
        failed_attempts = faults.drops
        delay = faults.delay_seconds
        bytes_per_edge = float(request.tensor.nbytes)
        base_seconds = self.link_model.permute_time(
            self.torus.num_cores, bytes_per_edge
        )
        if delay > 0.0 and base_seconds + delay > policy.timeout_seconds:
            # The slow link trips the per-collective timeout: the delayed
            # attempt is abandoned at the deadline and re-issued; the
            # retry then completes at base speed.
            failed_attempts += 1
            delay = 0.0
            if self.metrics is not None:
                self.metrics.counter("mesh_timeouts").inc()

        if failed_attempts > policy.max_retries:
            self._book_retries(request, ordinal, policy, policy.max_retries)
            if self.metrics is not None:
                self.metrics.counter("mesh_timeouts").inc()
            raise MeshTimeoutError(request.name, ordinal, policy.max_retries + 1)
        if failed_attempts:
            self._book_retries(request, ordinal, policy, failed_attempts)

        received = collective_permute(
            [req.tensor for req in requests], request.pairs
        )
        self.collectives_executed += 1
        extra = delay + faults.stall_seconds
        self._charge_communication(request, extra_seconds=extra)
        if extra > 0.0:
            self.fault_log.append(
                {
                    "name": f"fault_extra:{request.name}",
                    "collective": ordinal,
                    "start": self._comm_clock - extra,
                    "duration": extra,
                }
            )
        return received

    def _book_retries(
        self,
        request: PermuteRequest,
        ordinal: int,
        policy,
        n_attempts: int,
    ) -> None:
        """Charge ``n_attempts`` failed deliveries + backoff to every core.

        Each failed attempt costs the full per-collective timeout (drops
        are detected by deadline, not by magic) plus the policy's
        exponential backoff before the re-issue; lockstep means every
        core pays.  Spans land in :attr:`fault_log` so retry storms are
        visible in the exported Chrome trace.
        """
        bytes_per_edge = float(request.tensor.nbytes)
        for attempt in range(1, n_attempts + 1):
            seconds = policy.timeout_seconds + policy.backoff(attempt)
            name = f"retry{attempt}:{request.name}"
            if self.cores is not None:
                for core in self.cores:
                    core.charge_communication(
                        seconds, bytes_moved=bytes_per_edge, name=name
                    )
            self.fault_log.append(
                {
                    "name": name,
                    "collective": ordinal,
                    "start": self._comm_clock,
                    "duration": seconds,
                }
            )
            self._comm_clock += seconds
            if self.metrics is not None:
                self.metrics.counter("mesh_retries").inc()

    def _charge_communication(
        self, request: PermuteRequest, extra_seconds: float = 0.0
    ) -> None:
        bytes_per_edge = float(request.tensor.nbytes)
        if self.metrics is not None:
            self.metrics.counter("collectives_total").inc()
            self.metrics.counter("collective_bytes_total").inc(bytes_per_edge)
        if self.cores is None:
            self._comm_clock += extra_seconds
            return
        seconds = (
            self.link_model.permute_time(self.torus.num_cores, bytes_per_edge)
            + extra_seconds
        )
        self._comm_clock += seconds
        if self.metrics is not None:
            self.metrics.histogram("collective_seconds").observe(seconds)
        for core in self.cores:
            core.charge_communication(
                seconds, bytes_moved=bytes_per_edge, name=request.name
            )
