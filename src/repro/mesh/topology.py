"""2D toroidal mesh topology of TensorCores.

TPU pods connect chips through a dedicated 2D toroidal mesh; every core
has a coordinate and collectives address cores by linear id.  This module
provides the coordinate arithmetic and the source-target pair lists for
the four nearest-neighbour shifts used by the halo exchange — the same
globally-identical specifications every core passes to
``collective_permute`` in the paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Torus2D", "DIRECTIONS", "degraded_grid"]

#: Shift directions: (row delta, col delta) of the *receiving* core
#: relative to the sender.
DIRECTIONS = {
    "south": (1, 0),
    "north": (-1, 0),
    "east": (0, 1),
    "west": (0, -1),
}


@dataclass(frozen=True)
class Torus2D:
    """A rows x cols torus of cores with linear ids in row-major order."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"torus dimensions must be positive, got {self.rows}x{self.cols}")

    @property
    def num_cores(self) -> int:
        return self.rows * self.cols

    def linear_id(self, row: int, col: int) -> int:
        """Linear id of the core at (row, col), with torus wrap."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def coords(self, core_id: int) -> tuple[int, int]:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} outside 0..{self.num_cores - 1}")
        return divmod(core_id, self.cols)

    def neighbor(self, core_id: int, direction: str) -> int:
        """Linear id of the adjacent core in the given direction."""
        dr, dc = self._delta(direction)
        row, col = self.coords(core_id)
        return self.linear_id(row + dr, col + dc)

    def shift_pairs(self, direction: str) -> tuple[tuple[int, int], ...]:
        """Source-target pairs sending every core's tensor one hop over.

        ``shift_pairs("south")`` sends each core's data to the core below
        it (so every core *receives from its north*), wrapping at the
        torus edge — the globally identical spec of Fig. 5.
        """
        dr, dc = self._delta(direction)
        return tuple(
            (
                self.linear_id(r, c),
                self.linear_id(r + dr, c + dc),
            )
            for r in range(self.rows)
            for c in range(self.cols)
        )

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two cores on the torus."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def _delta(self, direction: str) -> tuple[int, int]:
        try:
            return DIRECTIONS[direction]
        except KeyError:
            raise ValueError(
                f"unknown direction {direction!r}; expected one of {sorted(DIRECTIONS)}"
            ) from None


def degraded_grid(
    core_grid: tuple[int, int], global_shape: tuple[int, int]
) -> tuple[int, int] | None:
    """Largest surviving torus sub-grid after a permanent core loss.

    Pod slices are rectangular, so losing one core means re-forming a
    *smaller rectangular* torus from the survivors and re-decomposing the
    lattice onto it.  A candidate (r, c) must fit inside the old grid,
    hold strictly fewer cores (the dead one is excluded), and still
    decompose ``global_shape`` evenly into even-sided per-core lattices
    (the checkerboard constraint).  Among candidates the most cores win;
    ties prefer the taller grid, keeping the choice deterministic.

    Returns ``None`` when no valid smaller grid exists (then the loss is
    unrecoverable and :class:`~repro.mesh.faults.CoreLostError` should
    propagate).
    """
    p_rows, p_cols = core_grid
    rows, cols = global_shape
    best: tuple[int, int] | None = None
    best_key = None
    for r in range(1, p_rows + 1):
        if rows % r or (rows // r) % 2:
            continue
        for c in range(1, p_cols + 1):
            if r * c >= p_rows * p_cols:
                continue
            if cols % c or (cols // c) % 2:
                continue
            key = (r * c, r)
            if best_key is None or key > best_key:
                best, best_key = (r, c), key
    return best
