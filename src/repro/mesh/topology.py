"""2D toroidal mesh topology of TensorCores.

TPU pods connect chips through a dedicated 2D toroidal mesh; every core
has a coordinate and collectives address cores by linear id.  This module
provides the coordinate arithmetic and the source-target pair lists for
the four nearest-neighbour shifts used by the halo exchange — the same
globally-identical specifications every core passes to
``collective_permute`` in the paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Torus2D",
    "HierarchicalTorus",
    "DIRECTIONS",
    "degraded_grid",
    "degraded_pod_grid",
]

#: Shift directions: (row delta, col delta) of the *receiving* core
#: relative to the sender.
DIRECTIONS = {
    "south": (1, 0),
    "north": (-1, 0),
    "east": (0, 1),
    "west": (0, -1),
}


@dataclass(frozen=True)
class Torus2D:
    """A rows x cols torus of cores with linear ids in row-major order."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"torus dimensions must be positive, got {self.rows}x{self.cols}")

    @property
    def num_cores(self) -> int:
        return self.rows * self.cols

    def linear_id(self, row: int, col: int) -> int:
        """Linear id of the core at (row, col), with torus wrap."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def coords(self, core_id: int) -> tuple[int, int]:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} outside 0..{self.num_cores - 1}")
        return divmod(core_id, self.cols)

    def neighbor(self, core_id: int, direction: str) -> int:
        """Linear id of the adjacent core in the given direction."""
        dr, dc = self._delta(direction)
        row, col = self.coords(core_id)
        return self.linear_id(row + dr, col + dc)

    def shift_pairs(self, direction: str) -> tuple[tuple[int, int], ...]:
        """Source-target pairs sending every core's tensor one hop over.

        ``shift_pairs("south")`` sends each core's data to the core below
        it (so every core *receives from its north*), wrapping at the
        torus edge — the globally identical spec of Fig. 5.
        """
        dr, dc = self._delta(direction)
        return tuple(
            (
                self.linear_id(r, c),
                self.linear_id(r + dr, c + dc),
            )
            for r in range(self.rows)
            for c in range(self.cols)
        )

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two cores on the torus."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def _delta(self, direction: str) -> tuple[int, int]:
        try:
            return DIRECTIONS[direction]
        except KeyError:
            raise ValueError(
                f"unknown direction {direction!r}; expected one of {sorted(DIRECTIONS)}"
            ) from None


@dataclass(frozen=True)
class HierarchicalTorus(Torus2D):
    """A pod-of-pods: fast intra-pod torus links, slower inter-pod tier.

    The core id space is the *flat* ``rows x cols`` torus inherited from
    :class:`Torus2D` — linear ids, neighbours, ``shift_pairs`` and
    ``hop_distance`` are all identical to a flat torus of the same total
    shape, which is what keeps the halo data movement (and therefore the
    chain) bit-identical when a run is re-hosted on a hierarchical mesh.
    What the subclass adds is *structure*: the grid is tiled into
    ``pod_rows x pod_cols`` sub-pods, each an intra-pod torus of
    ``rows/pod_rows x cols/pod_cols`` cores, and edges that leave a
    sub-pod are classified as inter-pod links so a two-tier
    :class:`~repro.mesh.links.TwoTierLinkModel` can price them on the
    slower tier (the rack-scale hierarchical decomposition of
    arXiv:2502.18624, mapped onto the paper's pod vocabulary).

    ``pod_rows`` / ``pod_cols`` count the *pods along each axis*, so a
    ``HierarchicalTorus(8, 8, 2, 2)`` is a 2x2 grid of 4x4-core pods.
    """

    pod_rows: int
    pod_cols: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pod_rows <= 0 or self.pod_cols <= 0:
            raise ValueError(
                f"pod grid must be positive, got {self.pod_rows}x{self.pod_cols}"
            )
        if self.rows % self.pod_rows or self.cols % self.pod_cols:
            raise ValueError(
                f"core grid {self.rows}x{self.cols} not divisible by pod "
                f"grid {self.pod_rows}x{self.pod_cols}"
            )

    # -- pod structure ------------------------------------------------------

    @property
    def pod_grid(self) -> tuple[int, int]:
        """(pods per row axis, pods per column axis)."""
        return (self.pod_rows, self.pod_cols)

    @property
    def pod_shape(self) -> tuple[int, int]:
        """Cores per sub-pod along each axis."""
        return (self.rows // self.pod_rows, self.cols // self.pod_cols)

    @property
    def num_pods(self) -> int:
        return self.pod_rows * self.pod_cols

    @property
    def cores_per_pod(self) -> int:
        pr, pc = self.pod_shape
        return pr * pc

    def pod_of(self, core_id: int) -> int:
        """Linear pod id (row-major over the pod grid) owning a core."""
        row, col = self.coords(core_id)
        pr, pc = self.pod_shape
        return (row // pr) * self.pod_cols + (col // pc)

    def pod_coords(self, pod_id: int) -> tuple[int, int]:
        if not 0 <= pod_id < self.num_pods:
            raise ValueError(f"pod id {pod_id} outside 0..{self.num_pods - 1}")
        return divmod(pod_id, self.pod_cols)

    def cores_in_pod(self, pod_id: int) -> tuple[int, ...]:
        """Linear core ids of one sub-pod, row-major."""
        prow, pcol = self.pod_coords(pod_id)
        pr, pc = self.pod_shape
        return tuple(
            self.linear_id(prow * pr + r, pcol * pc + c)
            for r in range(pr)
            for c in range(pc)
        )

    def crosses_pods(self, src: int, dst: int) -> bool:
        """True when the (src, dst) edge leaves its sub-pod."""
        return self.pod_of(src) != self.pod_of(dst)

    def pairs_cross_pods(self, pairs) -> bool:
        """True when any (src, dst) pair in a collective spans two pods.

        Lockstep semantics make this the tier question for a whole
        collective: the permute completes when its slowest edge lands,
        so one inter-pod pair prices the collective on the slow tier.
        """
        return any(self.crosses_pods(src, dst) for src, dst in pairs)


def degraded_grid(
    core_grid: tuple[int, int], global_shape: tuple[int, int]
) -> tuple[int, int] | None:
    """Largest surviving torus sub-grid after a permanent core loss.

    Pod slices are rectangular, so losing one core means re-forming a
    *smaller rectangular* torus from the survivors and re-decomposing the
    lattice onto it.  A candidate (r, c) must fit inside the old grid,
    hold strictly fewer cores (the dead one is excluded), and still
    decompose ``global_shape`` evenly into even-sided per-core lattices
    (the checkerboard constraint).  Among candidates the most cores win;
    ties prefer the taller grid, keeping the choice deterministic.

    Returns ``None`` when no valid smaller grid exists (then the loss is
    unrecoverable and :class:`~repro.mesh.faults.CoreLostError` should
    propagate).
    """
    p_rows, p_cols = core_grid
    rows, cols = global_shape
    best: tuple[int, int] | None = None
    best_key = None
    for r in range(1, p_rows + 1):
        if rows % r or (rows // r) % 2:
            continue
        for c in range(1, p_cols + 1):
            if r * c >= p_rows * p_cols:
                continue
            if cols % c or (cols // c) % 2:
                continue
            key = (r * c, r)
            if best_key is None or key > best_key:
                best, best_key = (r, c), key
    return best


def degraded_pod_grid(
    torus: HierarchicalTorus, global_shape: tuple[int, int]
) -> HierarchicalTorus | None:
    """Largest surviving pod-of-pods after losing one entire sub-pod.

    Losing a sub-pod removes a whole tile of the hierarchical mesh, so
    recovery re-forms a *smaller rectangular pod grid* from the
    survivors, keeping the intra-pod shape intact (sub-pods are physical
    units — a rack, a pod slice — and do not re-partition).  A candidate
    ``(gr, gc)`` pod grid must fit inside the old one, hold strictly
    fewer pods, and still decompose ``global_shape`` evenly into
    even-sided per-core lattices on the resulting
    ``gr*pod_rows x gc*pod_cols`` core grid.  Most surviving cores win;
    ties prefer more pod rows, keeping the choice deterministic.

    Returns ``None`` when no valid smaller pod grid exists (a single-pod
    mesh cannot shed its only pod).
    """
    pr, pc = torus.pod_shape
    rows, cols = global_shape
    best: tuple[int, int] | None = None
    best_key = None
    for gr in range(1, torus.pod_rows + 1):
        core_rows = gr * pr
        if rows % core_rows or (rows // core_rows) % 2:
            continue
        for gc in range(1, torus.pod_cols + 1):
            if gr * gc >= torus.num_pods:
                continue
            core_cols = gc * pc
            if cols % core_cols or (cols // core_cols) % 2:
                continue
            key = (gr * gc, gr)
            if best_key is None or key > best_key:
                best, best_key = (gr, gc), key
    if best is None:
        return None
    gr, gc = best
    return HierarchicalTorus(gr * pr, gc * pc, gr, gc)
