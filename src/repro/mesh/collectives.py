"""Data semantics of the XLA collectives used by the paper.

``collective_permute`` forwards each source core's tensor to its target
core according to a globally identical list of (source, target) pairs;
cores that are not the target of any pair receive zeros (XLA semantics).
``all_gather`` and ``all_reduce`` are provided for observable collection
(pod-wide magnetization without going through the host).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["collective_permute", "all_gather", "all_reduce", "validate_pairs"]


def validate_pairs(pairs: Sequence[tuple[int, int]], n_cores: int) -> None:
    """Check XLA's constraints: ids in range, each target at most once."""
    seen_targets: set[int] = set()
    for src, dst in pairs:
        if not (0 <= src < n_cores and 0 <= dst < n_cores):
            raise ValueError(
                f"pair ({src}, {dst}) outside core range 0..{n_cores - 1}"
            )
        if dst in seen_targets:
            raise ValueError(f"target core {dst} appears in more than one pair")
        seen_targets.add(dst)


def collective_permute(
    values: Sequence[np.ndarray], pairs: Sequence[tuple[int, int]]
) -> list[np.ndarray]:
    """Permute per-core tensors according to source-target pairs.

    ``values[i]`` is core i's contribution; the result's entry i is what
    core i receives (zeros if it is not a target).
    """
    n_cores = len(values)
    validate_pairs(pairs, n_cores)
    shape = values[0].shape
    for i, v in enumerate(values):
        if v.shape != shape:
            raise ValueError(
                f"core {i} tensor shape {v.shape} != core 0 shape {shape} "
                "(collective operands must agree across cores)"
            )
    received = [np.zeros_like(values[0]) for _ in range(n_cores)]
    for src, dst in pairs:
        received[dst] = values[src].copy()
    return received


def all_gather(values: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Every core receives the concatenation of all cores' tensors."""
    stacked = np.stack(list(values))
    return [stacked.copy() for _ in values]


def all_reduce(values: Sequence[np.ndarray], op: str = "sum") -> list[np.ndarray]:
    """Every core receives the elementwise reduction over all cores."""
    stacked = np.stack(list(values))
    if op == "sum":
        reduced = stacked.sum(axis=0)
    elif op == "max":
        reduced = stacked.max(axis=0)
    elif op == "min":
        reduced = stacked.min(axis=0)
    else:
        raise ValueError(f"unknown reduction {op!r}; expected sum/max/min")
    return [reduced.copy() for _ in values]
