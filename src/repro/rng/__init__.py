"""Counter-based random number generation (Philox4x32-10).

The TPU's stateless RNG is the reason the paper's distributed simulation is
trivially reproducible across cores; this package provides the same
guarantees in numpy.
"""

from .philox import (
    PHILOX_M0,
    PHILOX_M1,
    PHILOX_W0,
    PHILOX_W1,
    philox4x32,
    philox_uniform_bits,
    philox_uniform_bits_batched,
    uint32_to_uniform,
)
from .streams import BatchedPhiloxStream, PhiloxStream, split_key

__all__ = [
    "PHILOX_M0",
    "PHILOX_M1",
    "PHILOX_W0",
    "PHILOX_W1",
    "philox4x32",
    "philox_uniform_bits",
    "philox_uniform_bits_batched",
    "uint32_to_uniform",
    "BatchedPhiloxStream",
    "PhiloxStream",
    "split_key",
]
