"""Philox4x32-10 counter-based pseudo-random number generator.

TPUs use stateless (counter-based) RNGs so that every core can draw an
independent, reproducible stream without shared mutable state.  This module
implements the Philox4x32 generator of Salmon et al. (SC 2011, "Parallel
random numbers: as easy as 1, 2, 3") in fully vectorised numpy.  It is the
random-number substrate for the whole library: the checkerboard updaters
draw their per-site acceptance uniforms from per-core keyed Philox streams
(see :mod:`repro.rng.streams`).

The generator maps a 128-bit counter and a 64-bit key to 128 bits of
output through 10 rounds of a simple multiply/xor network.  Distinct
(counter, key) pairs give statistically independent outputs, so parallel
streams are obtained by giving each core its own key and letting each core
advance its own counter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PHILOX_M0",
    "PHILOX_M1",
    "PHILOX_W0",
    "PHILOX_W1",
    "philox4x32",
    "philox_uniform_bits",
    "philox_uniform_bits_batched",
    "uint32_to_uniform",
]

# Multiplication and Weyl-sequence constants from the Random123 reference
# implementation.
PHILOX_M0 = np.uint64(0xD2511F53)
PHILOX_M1 = np.uint64(0xCD9E8D57)
PHILOX_W0 = np.uint32(0x9E3779B9)
PHILOX_W1 = np.uint32(0xBB67AE85)

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _mulhilo(mult: np.uint64, value: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the (high, low) 32-bit halves of ``mult * value``.

    ``value`` is a uint32 array; the product is formed in uint64 so both
    halves are exact.
    """
    product = mult * value.astype(np.uint64)
    hi = (product >> _SHIFT32).astype(np.uint32)
    lo = (product & _MASK32).astype(np.uint32)
    return hi, lo


def philox4x32(
    counter: np.ndarray, key: np.ndarray, rounds: int = 10
) -> np.ndarray:
    """Apply the Philox4x32 bijection to a batch of counters.

    Parameters
    ----------
    counter:
        uint32 array of shape ``(4, n)`` (or ``(4,)`` for a single
        counter); ``counter[0]`` is the least-significant word.
    key:
        uint32 array of shape ``(2, n)`` or ``(2,)``; broadcast against
        the counters.
    rounds:
        Number of rounds; 10 is the standard, crush-resistant choice.

    Returns
    -------
    uint32 array with the same shape as ``counter``: 128 bits of output
    per counter.
    """
    counter = np.asarray(counter, dtype=np.uint32)
    key = np.asarray(key, dtype=np.uint32)
    if counter.shape[0] != 4:
        raise ValueError(f"counter must have leading dimension 4, got {counter.shape}")
    if key.shape[0] != 2:
        raise ValueError(f"key must have leading dimension 2, got {key.shape}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")

    c0, c1, c2, c3 = (np.array(c, dtype=np.uint32, copy=True) for c in counter)
    k0 = np.array(key[0], dtype=np.uint32, copy=True)
    k1 = np.array(key[1], dtype=np.uint32, copy=True)

    # uint32 arithmetic wraps; numpy warns on overflow for scalars only,
    # and arrays wrap silently, which is exactly what we want here.
    with np.errstate(over="ignore"):
        for _ in range(rounds):
            hi0, lo0 = _mulhilo(PHILOX_M0, c0)
            hi1, lo1 = _mulhilo(PHILOX_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
            k0 = k0 + PHILOX_W0
            k1 = k1 + PHILOX_W1
    return np.stack([c0, c1, c2, c3])


def philox_uniform_bits(
    start_counter: int, n_words: int, key: tuple[int, int]
) -> np.ndarray:
    """Generate ``n_words`` uint32 words from consecutive Philox counters.

    The 128-bit counter space is indexed by ``start_counter`` (a Python
    int, taken modulo 2**128); each counter produces four output words.
    """
    if n_words <= 0:
        return np.empty(0, dtype=np.uint32)
    n_counters = -(-n_words // 4)
    start_counter %= 1 << 128

    base_lo = start_counter & ((1 << 64) - 1)
    base_hi = start_counter >> 64
    idx = np.arange(n_counters, dtype=np.uint64)
    with np.errstate(over="ignore"):
        lo = np.uint64(base_lo) + idx
    # Wrap-around of the low 64-bit limb carries into the high limb.
    carry = (lo < np.uint64(base_lo)).astype(np.uint64)
    with np.errstate(over="ignore"):
        hi = np.uint64(base_hi & ((1 << 64) - 1)) + carry

    counter = np.empty((4, n_counters), dtype=np.uint32)
    counter[0] = (lo & _MASK32).astype(np.uint32)
    counter[1] = (lo >> _SHIFT32).astype(np.uint32)
    counter[2] = (hi & _MASK32).astype(np.uint32)
    counter[3] = (hi >> _SHIFT32).astype(np.uint32)

    key_arr = np.array(
        [key[0] & 0xFFFFFFFF, key[1] & 0xFFFFFFFF], dtype=np.uint32
    ).reshape(2, 1)
    out = philox4x32(counter, key_arr)
    # Interleave so that consecutive words come from output lanes 0..3 of
    # consecutive counters: transpose (4, n) -> (n, 4) -> flatten.
    return out.T.reshape(-1)[:n_words]


def philox_uniform_bits_batched(
    start_counters: "list[int] | np.ndarray",
    n_words: int,
    keys: np.ndarray,
) -> np.ndarray:
    """Generate ``n_words`` words for each of B independent (counter, key) streams.

    Parameters
    ----------
    start_counters:
        Length-B sequence of 128-bit counters (Python ints, taken modulo
        2**128); stream ``b`` consumes counters starting at
        ``start_counters[b]``.
    n_words:
        Words to draw per stream.
    keys:
        ``(B, 2)`` array-like of uint32 key words, one pair per stream.

    Returns
    -------
    ``(B, n_words)`` uint32 array whose row ``b`` is bit-identical to
    ``philox_uniform_bits(start_counters[b], n_words, keys[b])`` — the
    batched draw is exactly B independent solo draws evaluated in one
    vectorised Philox pass.
    """
    keys = np.asarray(keys, dtype=np.uint32)
    if keys.ndim != 2 or keys.shape[1] != 2:
        raise ValueError(f"keys must have shape (B, 2), got {keys.shape}")
    n_streams = keys.shape[0]
    if len(start_counters) != n_streams:
        raise ValueError(
            f"{len(start_counters)} counters for {n_streams} keys"
        )
    if n_words <= 0:
        return np.empty((n_streams, 0), dtype=np.uint32)
    n_counters = -(-n_words // 4)

    starts = [int(c) % (1 << 128) for c in start_counters]
    base_lo = np.array(
        [c & ((1 << 64) - 1) for c in starts], dtype=np.uint64
    ).reshape(-1, 1)
    base_hi = np.array(
        [(c >> 64) & ((1 << 64) - 1) for c in starts], dtype=np.uint64
    ).reshape(-1, 1)
    idx = np.arange(n_counters, dtype=np.uint64).reshape(1, -1)
    with np.errstate(over="ignore"):
        lo = base_lo + idx
    # Wrap-around of the low 64-bit limb carries into the high limb.
    carry = (lo < base_lo).astype(np.uint64)
    with np.errstate(over="ignore"):
        hi = base_hi + carry

    counter = np.empty((4, n_streams, n_counters), dtype=np.uint32)
    counter[0] = (lo & _MASK32).astype(np.uint32)
    counter[1] = (lo >> _SHIFT32).astype(np.uint32)
    counter[2] = (hi & _MASK32).astype(np.uint32)
    counter[3] = (hi >> _SHIFT32).astype(np.uint32)

    key_arr = keys.T.reshape(2, n_streams, 1)
    out = philox4x32(counter, key_arr)
    # Per stream, interleave output lanes exactly like the solo path:
    # (4, B, n) -> (B, n, 4) -> (B, n * 4) -> trim.
    return out.transpose(1, 2, 0).reshape(n_streams, -1)[:, :n_words]


def uint32_to_uniform(bits: np.ndarray) -> np.ndarray:
    """Map uint32 words to float32 uniforms in [0, 1).

    Uses the top 24 bits so every result is exactly representable in
    float32 (and the mapping is the one TF's stateless uniform uses).
    """
    return ((bits >> np.uint32(8)).astype(np.float32)) * np.float32(2.0**-24)
