"""Philox4x32-10 counter-based pseudo-random number generator.

TPUs use stateless (counter-based) RNGs so that every core can draw an
independent, reproducible stream without shared mutable state.  This module
implements the Philox4x32 generator of Salmon et al. (SC 2011, "Parallel
random numbers: as easy as 1, 2, 3") in fully vectorised numpy.  It is the
random-number substrate for the whole library: the checkerboard updaters
draw their per-site acceptance uniforms from per-core keyed Philox streams
(see :mod:`repro.rng.streams`).

The generator maps a 128-bit counter and a 64-bit key to 128 bits of
output through 10 rounds of a simple multiply/xor network.  Distinct
(counter, key) pairs give statistically independent outputs, so parallel
streams are obtained by giving each core its own key and letting each core
advance its own counter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PHILOX_M0",
    "PHILOX_M1",
    "PHILOX_W0",
    "PHILOX_W1",
    "philox4x32",
    "philox_uniform_bits",
    "philox_uniform_bits_batched",
    "make_philox_scratch",
    "philox_bits_into",
    "uint32_to_uniform",
    "uniform_from_bits_into",
]

# Multiplication and Weyl-sequence constants from the Random123 reference
# implementation.
PHILOX_M0 = np.uint64(0xD2511F53)
PHILOX_M1 = np.uint64(0xCD9E8D57)
PHILOX_W0 = np.uint32(0x9E3779B9)
PHILOX_W1 = np.uint32(0xBB67AE85)

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _mulhilo(mult: np.uint64, value: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the (high, low) 32-bit halves of ``mult * value``.

    ``value`` is a uint32 array; the product is formed in uint64 so both
    halves are exact.
    """
    product = mult * value.astype(np.uint64)
    hi = (product >> _SHIFT32).astype(np.uint32)
    lo = (product & _MASK32).astype(np.uint32)
    return hi, lo


def philox4x32(
    counter: np.ndarray, key: np.ndarray, rounds: int = 10
) -> np.ndarray:
    """Apply the Philox4x32 bijection to a batch of counters.

    Parameters
    ----------
    counter:
        uint32 array of shape ``(4, n)`` (or ``(4,)`` for a single
        counter); ``counter[0]`` is the least-significant word.
    key:
        uint32 array of shape ``(2, n)`` or ``(2,)``; broadcast against
        the counters.
    rounds:
        Number of rounds; 10 is the standard, crush-resistant choice.

    Returns
    -------
    uint32 array with the same shape as ``counter``: 128 bits of output
    per counter.
    """
    counter = np.asarray(counter, dtype=np.uint32)
    key = np.asarray(key, dtype=np.uint32)
    if counter.shape[0] != 4:
        raise ValueError(f"counter must have leading dimension 4, got {counter.shape}")
    if key.shape[0] != 2:
        raise ValueError(f"key must have leading dimension 2, got {key.shape}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")

    c0, c1, c2, c3 = (np.array(c, dtype=np.uint32, copy=True) for c in counter)
    k0 = np.array(key[0], dtype=np.uint32, copy=True)
    k1 = np.array(key[1], dtype=np.uint32, copy=True)

    # uint32 arithmetic wraps; numpy warns on overflow for scalars only,
    # and arrays wrap silently, which is exactly what we want here.
    with np.errstate(over="ignore"):
        for _ in range(rounds):
            hi0, lo0 = _mulhilo(PHILOX_M0, c0)
            hi1, lo1 = _mulhilo(PHILOX_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
            k0 = k0 + PHILOX_W0
            k1 = k1 + PHILOX_W1
    return np.stack([c0, c1, c2, c3])


def philox_uniform_bits(
    start_counter: int, n_words: int, key: tuple[int, int]
) -> np.ndarray:
    """Generate ``n_words`` uint32 words from consecutive Philox counters.

    The 128-bit counter space is indexed by ``start_counter`` (a Python
    int, taken modulo 2**128); each counter produces four output words.
    """
    if n_words <= 0:
        return np.empty(0, dtype=np.uint32)
    n_counters = -(-n_words // 4)
    start_counter %= 1 << 128

    base_lo = start_counter & ((1 << 64) - 1)
    base_hi = start_counter >> 64
    idx = np.arange(n_counters, dtype=np.uint64)
    with np.errstate(over="ignore"):
        lo = np.uint64(base_lo) + idx
    # Wrap-around of the low 64-bit limb carries into the high limb.
    carry = (lo < np.uint64(base_lo)).astype(np.uint64)
    with np.errstate(over="ignore"):
        hi = np.uint64(base_hi & ((1 << 64) - 1)) + carry

    counter = np.empty((4, n_counters), dtype=np.uint32)
    counter[0] = (lo & _MASK32).astype(np.uint32)
    counter[1] = (lo >> _SHIFT32).astype(np.uint32)
    counter[2] = (hi & _MASK32).astype(np.uint32)
    counter[3] = (hi >> _SHIFT32).astype(np.uint32)

    key_arr = np.array(
        [key[0] & 0xFFFFFFFF, key[1] & 0xFFFFFFFF], dtype=np.uint32
    ).reshape(2, 1)
    out = philox4x32(counter, key_arr)
    # Interleave so that consecutive words come from output lanes 0..3 of
    # consecutive counters: transpose (4, n) -> (n, 4) -> flatten.
    return out.T.reshape(-1)[:n_words]


def philox_uniform_bits_batched(
    start_counters: "list[int] | np.ndarray",
    n_words: int,
    keys: np.ndarray,
) -> np.ndarray:
    """Generate ``n_words`` words for each of B independent (counter, key) streams.

    Parameters
    ----------
    start_counters:
        Length-B sequence of 128-bit counters (Python ints, taken modulo
        2**128); stream ``b`` consumes counters starting at
        ``start_counters[b]``.
    n_words:
        Words to draw per stream.
    keys:
        ``(B, 2)`` array-like of uint32 key words, one pair per stream.

    Returns
    -------
    ``(B, n_words)`` uint32 array whose row ``b`` is bit-identical to
    ``philox_uniform_bits(start_counters[b], n_words, keys[b])`` — the
    batched draw is exactly B independent solo draws evaluated in one
    vectorised Philox pass.
    """
    keys = np.asarray(keys, dtype=np.uint32)
    if keys.ndim != 2 or keys.shape[1] != 2:
        raise ValueError(f"keys must have shape (B, 2), got {keys.shape}")
    n_streams = keys.shape[0]
    if len(start_counters) != n_streams:
        raise ValueError(
            f"{len(start_counters)} counters for {n_streams} keys"
        )
    if n_words <= 0:
        return np.empty((n_streams, 0), dtype=np.uint32)
    n_counters = -(-n_words // 4)

    starts = [int(c) % (1 << 128) for c in start_counters]
    base_lo = np.array(
        [c & ((1 << 64) - 1) for c in starts], dtype=np.uint64
    ).reshape(-1, 1)
    base_hi = np.array(
        [(c >> 64) & ((1 << 64) - 1) for c in starts], dtype=np.uint64
    ).reshape(-1, 1)
    idx = np.arange(n_counters, dtype=np.uint64).reshape(1, -1)
    with np.errstate(over="ignore"):
        lo = base_lo + idx
    # Wrap-around of the low 64-bit limb carries into the high limb.
    carry = (lo < base_lo).astype(np.uint64)
    with np.errstate(over="ignore"):
        hi = base_hi + carry

    counter = np.empty((4, n_streams, n_counters), dtype=np.uint32)
    counter[0] = (lo & _MASK32).astype(np.uint32)
    counter[1] = (lo >> _SHIFT32).astype(np.uint32)
    counter[2] = (hi & _MASK32).astype(np.uint32)
    counter[3] = (hi >> _SHIFT32).astype(np.uint32)

    key_arr = keys.T.reshape(2, n_streams, 1)
    out = philox4x32(counter, key_arr)
    # Per stream, interleave output lanes exactly like the solo path:
    # (4, B, n) -> (B, n, 4) -> (B, n * 4) -> trim.
    return out.transpose(1, 2, 0).reshape(n_streams, -1)[:, :n_words]


def make_philox_scratch(n_streams: int, n_words: int) -> dict:
    """Preallocate every buffer :func:`philox_bits_into` needs.

    The returned dict is an opaque workspace sized for ``n_streams``
    independent streams drawing ``n_words`` words each; reusing it across
    calls is what makes the in-place generator allocation-free.
    """
    if n_streams < 1:
        raise ValueError(f"n_streams must be >= 1, got {n_streams}")
    if n_words < 1:
        raise ValueError(f"n_words must be >= 1, got {n_words}")
    n_counters = -(-n_words // 4)
    shape = (n_streams, n_counters)
    scratch = {
        "n_streams": n_streams,
        "n_words": n_words,
        "n_counters": n_counters,
        "idx": np.arange(n_counters, dtype=np.uint64).reshape(1, -1),
        "base_lo": np.empty((n_streams, 1), dtype=np.uint64),
        "base_hi": np.empty((n_streams, 1), dtype=np.uint64),
        "lo": np.empty(shape, dtype=np.uint64),
        "hi": np.empty(shape, dtype=np.uint64),
        "carry": np.empty(shape, dtype=bool),
        "p0": np.empty(shape, dtype=np.uint64),
        "p1": np.empty(shape, dtype=np.uint64),
        "c": np.empty((4,) + shape, dtype=np.uint32),
        "k0": np.empty((n_streams, 1), dtype=np.uint32),
        "k1": np.empty((n_streams, 1), dtype=np.uint32),
    }
    if n_words % 4 != 0:
        scratch["bits_pad"] = np.empty(
            (n_streams, n_counters * 4), dtype=np.uint32
        )
    return scratch


def philox_bits_into(
    start_counters: "list[int] | tuple[int, ...]",
    keys: np.ndarray,
    out: np.ndarray,
    scratch: dict,
    rounds: int = 10,
) -> np.ndarray:
    """Fill ``out`` with Philox words without allocating any arrays.

    Bit-identical to :func:`philox_uniform_bits_batched` (and, for a
    single stream, to :func:`philox_uniform_bits`): same counter layout,
    same round network, same lane interleave.  All intermediates live in
    ``scratch`` (from :func:`make_philox_scratch` with matching
    ``n_streams``/``n_words``); ``out`` must be a C-contiguous
    ``(n_streams, n_words)`` uint32 array.
    """
    n_streams = scratch["n_streams"]
    n_words = scratch["n_words"]
    n_counters = scratch["n_counters"]
    keys = np.asarray(keys, dtype=np.uint32)
    if keys.shape != (n_streams, 2):
        raise ValueError(
            f"keys must have shape ({n_streams}, 2), got {keys.shape}"
        )
    if len(start_counters) != n_streams:
        raise ValueError(
            f"{len(start_counters)} counters for {n_streams} streams"
        )
    if out.shape != (n_streams, n_words) or out.dtype != np.uint32:
        raise ValueError(
            f"out must be uint32 ({n_streams}, {n_words}), got "
            f"{out.dtype} {out.shape}"
        )
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")

    base_lo = scratch["base_lo"]
    base_hi = scratch["base_hi"]
    for b, start in enumerate(start_counters):
        start = int(start) % (1 << 128)
        base_lo[b, 0] = start & ((1 << 64) - 1)
        base_hi[b, 0] = start >> 64

    lo = scratch["lo"]
    hi = scratch["hi"]
    carry = scratch["carry"]
    c = scratch["c"]
    c0, c1, c2, c3 = c[0], c[1], c[2], c[3]
    p0 = scratch["p0"]
    p1 = scratch["p1"]
    if n_streams == 1:
        # Scalar keys broadcast cheaper than (1, 1) arrays; precompute the
        # whole Weyl schedule from Python ints so nothing wraps at runtime.
        key_schedule = [
            (
                np.uint32((int(keys[0, 0]) + r * 0x9E3779B9) & 0xFFFFFFFF),
                np.uint32((int(keys[0, 1]) + r * 0xBB67AE85) & 0xFFFFFFFF),
            )
            for r in range(rounds)
        ]
    else:
        key_schedule = None
        k0 = scratch["k0"]
        k1 = scratch["k1"]
        k0[:, 0] = keys[:, 0]
        k1[:, 0] = keys[:, 1]

    with np.errstate(over="ignore"):
        # Counter block: lo/hi limbs with carry, split into 32-bit lanes.
        np.add(base_lo, scratch["idx"], out=lo)
        np.less(lo, base_lo, out=carry)
        np.copyto(hi, carry, casting="unsafe")
        np.add(hi, base_hi, out=hi)
        np.copyto(c0, lo, casting="unsafe")
        np.right_shift(lo, _SHIFT32, out=lo)
        np.copyto(c1, lo, casting="unsafe")
        np.copyto(c2, hi, casting="unsafe")
        np.right_shift(hi, _SHIFT32, out=hi)
        np.copyto(c3, hi, casting="unsafe")

        # Round network, identical to philox4x32 but with every temporary
        # drawn from scratch.  ``copyto`` with unsafe casting truncates
        # uint64 -> uint32, i.e. keeps the low word.
        for r in range(rounds):
            if key_schedule is not None:
                k0, k1 = key_schedule[r]
            np.multiply(c0, PHILOX_M0, out=p0)
            np.multiply(c2, PHILOX_M1, out=p1)
            # new c2 = hi(p0) ^ old c3 ^ k1; old c2 already consumed.
            np.right_shift(p0, _SHIFT32, out=hi)
            np.copyto(c2, hi, casting="unsafe")
            np.bitwise_xor(c2, c3, out=c2)
            np.bitwise_xor(c2, k1, out=c2)
            # new c3 = lo(p0); old c3 consumed above.
            np.copyto(c3, p0, casting="unsafe")
            # new c0 = hi(p1) ^ old c1 ^ k0; old c0 already consumed.
            np.right_shift(p1, _SHIFT32, out=hi)
            np.copyto(c0, hi, casting="unsafe")
            np.bitwise_xor(c0, c1, out=c0)
            np.bitwise_xor(c0, k0, out=c0)
            # new c1 = lo(p1); old c1 consumed above.
            np.copyto(c1, p1, casting="unsafe")
            if key_schedule is None:
                np.add(k0, PHILOX_W0, out=k0)
                np.add(k1, PHILOX_W1, out=k1)

    # Interleave lanes exactly like the allocating paths: word i of
    # counter j comes from output lane i of counter j.
    if n_words % 4 == 0:
        lanes = out.reshape(n_streams, n_counters, 4)
        for i in range(4):
            np.copyto(lanes[:, :, i], c[i])
    else:
        pad = scratch["bits_pad"]
        lanes = pad.reshape(n_streams, n_counters, 4)
        for i in range(4):
            np.copyto(lanes[:, :, i], c[i])
        np.copyto(out, pad[:, :n_words])
    return out


def uniform_from_bits_into(bits: np.ndarray, out: np.ndarray) -> np.ndarray:
    """In-place version of :func:`uint32_to_uniform`.

    Destroys ``bits`` (shifts it right by 8 in place) and fills ``out``
    (float32, same shape) with uniforms bit-identical to
    ``uint32_to_uniform(bits)``.
    """
    np.right_shift(bits, np.uint32(8), out=bits)
    # uint32 -> float32 is exact for values below 2**24, which the shift
    # guarantees, so the unsafe cast reproduces .astype(np.float32).
    np.copyto(out, bits, casting="unsafe")
    np.multiply(out, np.float32(2.0**-24), out=out)
    return out


def uint32_to_uniform(bits: np.ndarray) -> np.ndarray:
    """Map uint32 words to float32 uniforms in [0, 1).

    Uses the top 24 bits so every result is exactly representable in
    float32 (and the mapping is the one TF's stateless uniform uses).
    """
    return ((bits >> np.uint32(8)).astype(np.float32)) * np.float32(2.0**-24)
