"""Per-core keyed random streams on top of Philox4x32-10.

A :class:`PhiloxStream` is the software analogue of a TPU core's stateless
RNG: a (seed, stream_id) pair selects the Philox key, and the stream keeps
a 128-bit counter that advances with every draw.  Two streams with
different ``stream_id`` (e.g. one per TensorCore) never overlap, and the
same (seed, stream_id, draw sequence) reproduces bit-identical output on
any platform — the property the distributed tests rely on to compare a
multi-core chain against a single-core one.
"""

from __future__ import annotations

import numpy as np

from .philox import philox_uniform_bits, uint32_to_uniform

__all__ = ["PhiloxStream", "split_key"]


def _splitmix64(x: int) -> int:
    """One step of splitmix64; used to whiten user seeds into keys."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def split_key(seed: int, stream_id: int) -> tuple[int, int]:
    """Derive a 64-bit Philox key (two uint32 words) from seed and stream id.

    Mixing both inputs through splitmix64 ensures that nearby seeds or
    consecutive stream ids give unrelated keys.
    """
    mixed = _splitmix64(_splitmix64(seed & 0xFFFFFFFFFFFFFFFF) ^ (stream_id & 0xFFFFFFFFFFFFFFFF))
    return mixed & 0xFFFFFFFF, (mixed >> 32) & 0xFFFFFFFF


class PhiloxStream:
    """A stateful, reproducible uniform-random stream for one logical core.

    Parameters
    ----------
    seed:
        Global experiment seed shared by every core.
    stream_id:
        Distinguishes streams (e.g. the core's linear id in the mesh).
    """

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        self.seed = int(seed)
        self.stream_id = int(stream_id)
        self._key = split_key(self.seed, self.stream_id)
        self._counter = 0

    def __repr__(self) -> str:
        return (
            f"PhiloxStream(seed={self.seed}, stream_id={self.stream_id}, "
            f"counter={self._counter})"
        )

    @property
    def counter(self) -> int:
        """Number of 32-bit words drawn so far (the Philox counter * 4)."""
        return self._counter

    def spawn(self, child_id: int) -> "PhiloxStream":
        """Create an independent child stream keyed off this stream's id."""
        return PhiloxStream(self.seed, _splitmix64(self.stream_id ^ (child_id + 1)) & 0xFFFFFFFFFFFFFFFF)

    def random_bits(self, n_words: int) -> np.ndarray:
        """Draw ``n_words`` uint32 words and advance the counter."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        # Consecutive draws use disjoint counter ranges; each counter yields
        # four words, so the counter advances by the number of counters used.
        n_counters = -(-n_words // 4)
        bits = philox_uniform_bits(self._counter, n_words, self._key)
        self._counter += n_counters
        return bits

    def uniform(self, shape: int | tuple[int, ...]) -> np.ndarray:
        """Draw float32 uniforms in [0, 1) with the given shape."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        size = int(np.prod(shape)) if shape else 1
        bits = self.random_bits(size)
        return uint32_to_uniform(bits).reshape(shape)

    def state(self) -> dict:
        """Serializable state (for checkpoint/restart of long chains)."""
        return {
            "seed": self.seed,
            "stream_id": self.stream_id,
            "counter": self._counter,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PhiloxStream":
        stream = cls(state["seed"], state["stream_id"])
        stream._counter = int(state["counter"])
        return stream
