"""Per-core keyed random streams on top of Philox4x32-10.

A :class:`PhiloxStream` is the software analogue of a TPU core's stateless
RNG: a (seed, stream_id) pair selects the Philox key, and the stream keeps
a 128-bit counter that advances with every draw.  Two streams with
different ``stream_id`` (e.g. one per TensorCore) never overlap, and the
same (seed, stream_id, draw sequence) reproduces bit-identical output on
any platform — the property the distributed tests rely on to compare a
multi-core chain against a single-core one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .philox import (
    make_philox_scratch,
    philox_bits_into,
    philox_uniform_bits,
    philox_uniform_bits_batched,
    uint32_to_uniform,
    uniform_from_bits_into,
)

__all__ = ["PhiloxStream", "BatchedPhiloxStream", "split_key"]


def _splitmix64(x: int) -> int:
    """One step of splitmix64; used to whiten user seeds into keys."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def split_key(seed: int, stream_id: int) -> tuple[int, int]:
    """Derive a 64-bit Philox key (two uint32 words) from seed and stream id.

    Mixing both inputs through splitmix64 ensures that nearby seeds or
    consecutive stream ids give unrelated keys.
    """
    mixed = _splitmix64(_splitmix64(seed & 0xFFFFFFFFFFFFFFFF) ^ (stream_id & 0xFFFFFFFFFFFFFFFF))
    return mixed & 0xFFFFFFFF, (mixed >> 32) & 0xFFFFFFFF


class PhiloxStream:
    """A stateful, reproducible uniform-random stream for one logical core.

    Parameters
    ----------
    seed:
        Global experiment seed shared by every core.
    stream_id:
        Distinguishes streams (e.g. the core's linear id in the mesh).
    """

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        self.seed = int(seed)
        self.stream_id = int(stream_id)
        self._key = split_key(self.seed, self.stream_id)
        self._counter = 0
        # Lazily built per-draw-size workspaces for uniform_into; purely a
        # performance cache, deliberately excluded from state().
        self._inplace_scratch: dict[int, dict] = {}

    def __repr__(self) -> str:
        return (
            f"PhiloxStream(seed={self.seed}, stream_id={self.stream_id}, "
            f"counter={self._counter})"
        )

    @property
    def counter(self) -> int:
        """Number of 128-bit Philox counter blocks consumed so far.

        Each block yields four 32-bit output words, and a draw always
        consumes whole blocks: ``random_bits(n)`` advances the counter by
        ``ceil(n / 4)``, discarding any unused tail words of the final
        block.  Checkpointing after a partial-block draw therefore resumes
        bit-identically — the next draw starts at the next whole block
        either way.
        """
        return self._counter

    def spawn(self, child_id: int) -> "PhiloxStream":
        """Create an independent child stream keyed off this stream's id."""
        return PhiloxStream(self.seed, _splitmix64(self.stream_id ^ (child_id + 1)) & 0xFFFFFFFFFFFFFFFF)

    def random_bits(self, n_words: int) -> np.ndarray:
        """Draw ``n_words`` uint32 words and advance the counter."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        # Consecutive draws use disjoint counter ranges; each counter yields
        # four words, so the counter advances by the number of counters used.
        n_counters = -(-n_words // 4)
        bits = philox_uniform_bits(self._counter, n_words, self._key)
        self._counter += n_counters
        return bits

    def uniform(self, shape: int | tuple[int, ...]) -> np.ndarray:
        """Draw float32 uniforms in [0, 1) with the given shape."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        size = int(np.prod(shape)) if shape else 1
        bits = self.random_bits(size)
        return uint32_to_uniform(bits).reshape(shape)

    def uniform_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` (C-contiguous float32) with uniforms, allocation-free.

        Bit-identical to ``uniform(out.shape)`` — same counter advance,
        same word-to-float mapping — but every intermediate lives in a
        per-size workspace cached on the stream, so steady-state draws
        perform no heap allocation.
        """
        if out.dtype != np.float32 or not out.flags["C_CONTIGUOUS"]:
            raise ValueError("out must be a C-contiguous float32 array")
        size = int(out.size)
        if size == 0:
            return out
        scratch = self._inplace_scratch.get(size)
        if scratch is None:
            scratch = make_philox_scratch(1, size)
            scratch["bits"] = np.empty((1, size), dtype=np.uint32)
            scratch["keys"] = np.array([self._key], dtype=np.uint32)
            self._inplace_scratch[size] = scratch
        philox_bits_into([self._counter], scratch["keys"], scratch["bits"], scratch)
        self._counter += -(-size // 4)
        uniform_from_bits_into(scratch["bits"], out.reshape(1, size))
        return out

    def bits_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` (C-contiguous uint32) with raw Philox words, allocation-free.

        Bit-identical to ``random_bits(out.size).reshape(out.shape)`` —
        same counter advance of ``ceil(size / 4)`` blocks — but every
        intermediate lives in the same per-size workspace
        :meth:`uniform_into` uses.  The words are the *raw* generator
        output: no top-24-bit shift is applied, so callers own the
        mapping from words to acceptance values (the packed engine
        compares them against integer thresholds directly).
        """
        if out.dtype != np.uint32 or not out.flags["C_CONTIGUOUS"]:
            raise ValueError("out must be a C-contiguous uint32 array")
        size = int(out.size)
        if size == 0:
            return out
        scratch = self._inplace_scratch.get(size)
        if scratch is None:
            scratch = make_philox_scratch(1, size)
            scratch["bits"] = np.empty((1, size), dtype=np.uint32)
            scratch["keys"] = np.array([self._key], dtype=np.uint32)
            self._inplace_scratch[size] = scratch
        philox_bits_into(
            [self._counter], scratch["keys"], out.reshape(1, size), scratch
        )
        self._counter += -(-size // 4)
        return out

    def state(self) -> dict:
        """Serializable state (for checkpoint/restart of long chains)."""
        return {
            "seed": self.seed,
            "stream_id": self.stream_id,
            "counter": self._counter,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PhiloxStream":
        stream = cls(state["seed"], state["stream_id"])
        stream._counter = int(state["counter"])
        return stream


class BatchedPhiloxStream:
    """B independent Philox streams advanced together, one per chain.

    This is the RNG substrate of the batched ensemble: chain ``b`` owns
    the key derived from ``(seeds[b], stream_ids[b])`` and its own 128-bit
    counter, so a batched draw is *exactly* B solo draws — bit-identical
    per chain to a :class:`PhiloxStream` fed the same (seed, stream_id)
    and draw sequence — evaluated in one vectorised Philox pass.

    Counters need not be aligned across chains (chains restored from
    checkpoints taken at different points batch fine); they advance in
    lockstep from wherever each one starts.
    """

    def __init__(
        self,
        seeds: "int | Sequence[int]",
        stream_ids: "Sequence[int]",
    ) -> None:
        stream_ids = [int(s) for s in stream_ids]
        if not stream_ids:
            raise ValueError("need at least one stream id")
        if isinstance(seeds, (int, np.integer)):
            seeds = [int(seeds)] * len(stream_ids)
        else:
            seeds = [int(s) for s in seeds]
        if len(seeds) != len(stream_ids):
            raise ValueError(
                f"{len(seeds)} seeds for {len(stream_ids)} stream ids"
            )
        self.seeds = seeds
        self.stream_ids = stream_ids
        self._keys = np.array(
            [split_key(seed, sid) for seed, sid in zip(seeds, stream_ids)],
            dtype=np.uint32,
        )
        self._counters = [0] * len(stream_ids)
        # Per-draw-size workspaces for uniform_into (perf cache only;
        # never serialized).
        self._inplace_scratch: dict[int, dict] = {}

    @classmethod
    def from_streams(cls, streams: "Sequence[PhiloxStream]") -> "BatchedPhiloxStream":
        """Bundle existing solo streams, carrying their counters over."""
        if not streams:
            raise ValueError("need at least one stream")
        batched = cls([s.seed for s in streams], [s.stream_id for s in streams])
        batched._counters = [s.counter for s in streams]
        return batched

    def __repr__(self) -> str:
        return (
            f"BatchedPhiloxStream(n_chains={self.n_chains}, "
            f"counters={self._counters})"
        )

    @property
    def n_chains(self) -> int:
        return len(self.stream_ids)

    @property
    def counters(self) -> list[int]:
        """Per-chain 128-bit counter blocks consumed (see PhiloxStream.counter)."""
        return list(self._counters)

    def chain(self, index: int) -> PhiloxStream:
        """Split chain ``index`` back out as an equivalent solo stream."""
        stream = PhiloxStream(self.seeds[index], self.stream_ids[index])
        stream._counter = self._counters[index]
        return stream

    def random_bits(self, n_words: int) -> np.ndarray:
        """Draw ``n_words`` uint32 words per chain; returns ``(B, n_words)``."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        bits = philox_uniform_bits_batched(self._counters, n_words, self._keys)
        n_counters = -(-n_words // 4)
        self._counters = [c + n_counters for c in self._counters]
        return bits

    def uniform(self, shape: int | tuple[int, ...]) -> np.ndarray:
        """Draw float32 uniforms of the given *batched* shape.

        ``shape`` is the full output shape including the leading chain
        axis, so updaters can request uniforms shaped like their batched
        state without special-casing; ``shape[0]`` must equal
        :attr:`n_chains`.  Chain ``b`` of the result is bit-identical to
        ``self.chain(b).uniform(shape[1:])``.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        if not shape or shape[0] != self.n_chains:
            raise ValueError(
                f"batched uniform shape {shape} must lead with the chain "
                f"axis (n_chains={self.n_chains})"
            )
        per_chain = int(np.prod(shape[1:])) if len(shape) > 1 else 1
        bits = self.random_bits(per_chain)
        return uint32_to_uniform(bits).reshape(shape)

    def uniform_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` with per-chain uniforms, allocation-free.

        ``out`` must be C-contiguous float32 with the chain axis leading
        (``out.shape[0] == n_chains``); chain ``b`` receives exactly what
        ``uniform(out.shape)[b]`` would, with the same counter advance.
        """
        if out.dtype != np.float32 or not out.flags["C_CONTIGUOUS"]:
            raise ValueError("out must be a C-contiguous float32 array")
        if out.ndim == 0 or out.shape[0] != self.n_chains:
            raise ValueError(
                f"batched uniform_into shape {out.shape} must lead with "
                f"the chain axis (n_chains={self.n_chains})"
            )
        per_chain = int(out.size) // self.n_chains
        if per_chain == 0:
            return out
        scratch = self._inplace_scratch.get(per_chain)
        if scratch is None:
            scratch = make_philox_scratch(self.n_chains, per_chain)
            scratch["bits"] = np.empty(
                (self.n_chains, per_chain), dtype=np.uint32
            )
            self._inplace_scratch[per_chain] = scratch
        philox_bits_into(self._counters, self._keys, scratch["bits"], scratch)
        n_counters = -(-per_chain // 4)
        self._counters = [c + n_counters for c in self._counters]
        uniform_from_bits_into(
            scratch["bits"], out.reshape(self.n_chains, per_chain)
        )
        return out

    def bits_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` with per-chain raw Philox words, allocation-free.

        ``out`` must be C-contiguous uint32 with the chain axis leading
        (``out.shape[0] == n_chains``); chain ``b`` receives exactly what
        ``self.chain(b).bits_into(...)`` would for the same per-chain
        word count, with the same counter advance.  As with
        :meth:`PhiloxStream.bits_into`, the words are raw generator
        output — no top-24-bit shift.
        """
        if out.dtype != np.uint32 or not out.flags["C_CONTIGUOUS"]:
            raise ValueError("out must be a C-contiguous uint32 array")
        if out.ndim == 0 or out.shape[0] != self.n_chains:
            raise ValueError(
                f"batched bits_into shape {out.shape} must lead with "
                f"the chain axis (n_chains={self.n_chains})"
            )
        per_chain = int(out.size) // self.n_chains
        if per_chain == 0:
            return out
        scratch = self._inplace_scratch.get(per_chain)
        if scratch is None:
            scratch = make_philox_scratch(self.n_chains, per_chain)
            scratch["bits"] = np.empty(
                (self.n_chains, per_chain), dtype=np.uint32
            )
            self._inplace_scratch[per_chain] = scratch
        philox_bits_into(
            self._counters,
            self._keys,
            out.reshape(self.n_chains, per_chain),
            scratch,
        )
        n_counters = -(-per_chain // 4)
        self._counters = [c + n_counters for c in self._counters]
        return out

    def state(self) -> dict:
        """Serializable state (for checkpoint/restart of ensembles)."""
        return {
            "seeds": list(self.seeds),
            "stream_ids": list(self.stream_ids),
            "counters": list(self._counters),
        }

    @classmethod
    def from_state(cls, state: dict) -> "BatchedPhiloxStream":
        batched = cls(state["seeds"], state["stream_ids"])
        batched._counters = [int(c) for c in state["counters"]]
        return batched
