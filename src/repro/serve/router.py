"""Shard routing: config-hash affinity + power-of-two-choices spill.

A :class:`ShardRouter` spreads traffic over N independent
:class:`~repro.sched.scheduler.Scheduler` + device-pool shards.  Routing
is **content-addressed**: a request's canonical cache key (the same
sha256 :mod:`repro.sched.cache` uses) ranks the shards by *rendezvous
hashing* (highest-random-weight), so

* every duplicate of a config lands on the same "affine" shard — the
  shard whose content-addressed cache and coalescer already know the
  config stay hot, which is what keeps per-shard hit rates at parity
  with a single giant scheduler (the ``bench_serve.py`` gate);
* adding or removing one shard moves only the keys whose top-ranked
  shard changed (≈ 1/N of the keyspace), never a full reshuffle — the
  property modulo hashing lacks and autoscaling needs.

When the affine shard is loaded past ``spill_ratio`` (and the request is
*not* a duplicate it could dedup for free), the router spills via
**power of two choices**: of the next two shards in rendezvous order, the
one with the shorter queue takes the job — bounded load imbalance
without global coordination.  A duplicate always tries its affine shard
first regardless of load: dedup costs no queue slot there.

Scale events re-home state: :meth:`remove_shard` drains the victim
through :meth:`~repro.sched.scheduler.Scheduler.shutdown`, adopts every
unfinished job into the surviving shard its key now ranks first
(bit-identical resume from the checkpoint token), and re-files each
flushed cache entry with its new affine shard.
"""

from __future__ import annotations

import hashlib

from ..sched.cache import canonical_cache_key
from ..sched.scheduler import (
    Scheduler,
    SchedulerDrainingError,
    SchedulerSaturatedError,
)

__all__ = ["Shard", "ShardRouter"]


def _default_scheduler_factory(shard_id: int) -> Scheduler:
    return Scheduler(n_devices=1, max_batch=16, quantum=8, max_queue=64)


class Shard:
    """One scheduler + device pool behind a stable routing identity.

    ``id`` is monotone over the router's lifetime and never reused, so
    rendezvous scores stay stable across scale events.
    """

    def __init__(self, shard_id: int, scheduler: Scheduler) -> None:
        self.id = int(shard_id)
        self.scheduler = scheduler

    @property
    def queue_depth(self) -> int:
        return self.scheduler.queue_depth

    @property
    def load_factor(self) -> float:
        """Queue occupancy in [0, 1+): depth over the admission bound."""
        return self.scheduler.queue_depth / self.scheduler.max_queue

    @property
    def busy(self) -> bool:
        return self.scheduler.busy

    @property
    def admitting(self) -> bool:
        return self.scheduler.admitting

    def __repr__(self) -> str:
        return (
            f"Shard(id={self.id}, queue={self.queue_depth}, "
            f"running={self.scheduler.running_chains})"
        )


class ShardRouter:
    """Route config-keyed jobs across scheduler shards.

    Parameters
    ----------
    n_shards:
        Initial shard count (the autoscaler may move it later).
    scheduler_factory:
        ``(shard_id) -> Scheduler`` builder; the default builds
        single-device schedulers (``max_batch=16``, ``quantum=8``,
        ``max_queue=64``).
    spill_ratio:
        Affine-shard load factor beyond which non-duplicate traffic
        spills to the lesser-loaded of the next two rendezvous choices.
    """

    def __init__(
        self,
        n_shards: int = 2,
        scheduler_factory=None,
        spill_ratio: float = 0.75,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not 0.0 < spill_ratio <= 1.0:
            raise ValueError(
                f"spill_ratio must be in (0, 1], got {spill_ratio}"
            )
        self._factory = (
            scheduler_factory
            if scheduler_factory is not None
            else _default_scheduler_factory
        )
        self.spill_ratio = float(spill_ratio)
        self.shards: "list[Shard]" = []
        self._next_shard_id = 0
        for _ in range(n_shards):
            self.add_shard()
        self.routed_affine = 0
        self.routed_spilled = 0
        self.rejected = 0
        self.jobs_rehomed = 0
        self.cache_entries_rehomed = 0

    # -- placement -----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def _score(self, key: str, shard: Shard) -> int:
        digest = hashlib.sha256(f"{key}/{shard.id}".encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big")

    def ranked(self, key: str) -> "list[Shard]":
        """All shards in rendezvous (highest-random-weight) order."""
        return sorted(
            self.shards, key=lambda shard: self._score(key, shard), reverse=True
        )

    def route_key(self, config, sweeps: int) -> str:
        """The canonical content address this router places by."""
        return canonical_cache_key(config, sweeps)

    def shard_for(self, config, sweeps: int) -> Shard:
        """The affine shard of (config, sweeps) — no load considered."""
        return self.ranked(self.route_key(config, sweeps))[0]

    def _candidates(self, key: str) -> "list[Shard]":
        """Shards in try-order: affinity first, p2c spill, then the rest.

        The affine shard leads unless it is loaded past ``spill_ratio``
        *and* cannot serve the key as a duplicate for free; then the
        lesser-loaded of the next two rendezvous choices is promoted and
        the affine shard demoted behind it (it still backstops).  The
        remaining shards follow in rendezvous order so a burst that
        saturates several shards degrades to "first shard with room"
        before becoming a reject.
        """
        order = [shard for shard in self.ranked(key) if shard.admitting]
        if len(order) < 2:
            return order
        affine = order[0]
        if (
            affine.load_factor >= self.spill_ratio
            and not affine.scheduler.is_duplicate(key)
        ):
            pair = order[1:3]
            spill = min(pair, key=lambda s: (s.queue_depth, s.id))
            rest = [s for s in order if s is not affine and s is not spill]
            return [spill, affine, *rest]
        return order

    def submit(
        self,
        config,
        sweeps: int,
        priority: int = 0,
        tenant: str = "default",
    ) -> "tuple[Shard, object]":
        """Place one job; returns ``(shard, job)`` or raises saturated.

        Walks the candidate order, so a single saturated shard never
        fails a request the cluster has room for.  When every shard
        refuses, re-raises :class:`SchedulerSaturatedError` carrying the
        *minimum* retry hint across shards — the earliest time any slot
        is modeled to free up.
        """
        key = self.route_key(config, sweeps)
        candidates = self._candidates(key)
        if not candidates:
            raise SchedulerDrainingError(
                "no admitting shards (router is draining)", retry_after_s=1.0
            )
        affine_id = self.ranked(key)[0].id
        hints: "list[float]" = []
        for shard in candidates:
            try:
                job = shard.scheduler.submit(
                    config, sweeps, priority=priority, tenant=tenant
                )
            except SchedulerSaturatedError as exc:
                if exc.retry_after_s is not None:
                    hints.append(exc.retry_after_s)
                continue
            if shard.id == affine_id:
                self.routed_affine += 1
            else:
                self.routed_spilled += 1
            return shard, job
        self.rejected += 1
        raise SchedulerSaturatedError(
            f"all {len(candidates)} shard(s) saturated",
            retry_after_s=min(hints) if hints else None,
        )

    # -- scaling -------------------------------------------------------------

    def add_shard(self) -> Shard:
        """Grow the pool by one shard (stable, never-reused id)."""
        shard = Shard(self._next_shard_id, self._factory(self._next_shard_id))
        self._next_shard_id += 1
        self.shards.append(shard)
        return shard

    def remove_shard(self, shard_id: int, on_rehome=None) -> int:
        """Drain one shard and re-home its work; returns jobs moved.

        The victim stops admitting, checkpoints its running batches, and
        hands every unfinished job to the shard its key now ranks first
        (adoption bypasses queue bounds — scale-down never sheds
        accepted work).  Flushed cache entries are re-filed with their
        new affine shards so the content-addressed hit rate survives the
        topology change.  ``on_rehome(token, new_shard, new_job)`` lets
        a front door re-point its job references.
        """
        victim = None
        for shard in self.shards:
            if shard.id == shard_id:
                victim = shard
                break
        if victim is None:
            raise ValueError(f"no shard with id {shard_id}")
        if len(self.shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.shards.remove(victim)
        flushed = victim.scheduler.shutdown(finish=False)
        for token in flushed["jobs"]:
            target = self.ranked(token["cache_key"])[0]
            new_job = target.scheduler.adopt(token)
            self.jobs_rehomed += 1
            if on_rehome is not None:
                on_rehome(token, target, new_job)
        for key, result in flushed["cache"]:
            self.ranked(key)[0].scheduler.cache.absorb([(key, result)])
            self.cache_entries_rehomed += 1
        return len(flushed["jobs"])

    # -- driving -------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling round on every busy shard; True while work remains."""
        busy = False
        for shard in self.shards:
            if shard.busy:
                shard.scheduler.step()
                busy = True
        return busy or any(shard.busy for shard in self.shards)

    def drain(self, max_rounds: int = 100_000) -> None:
        """Step every shard until the whole pool is idle."""
        for _ in range(max_rounds):
            if not self.step():
                return
        raise RuntimeError(f"router did not drain within {max_rounds} rounds")

    # -- introspection -------------------------------------------------------

    def aggregate_cache_stats(self) -> dict:
        """Pool-wide content-addressed cache counters (+ derived hit rate)."""
        totals = {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        for shard in self.shards:
            stats = shard.scheduler.cache.stats()
            for field in totals:
                totals[field] += stats[field]
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals

    def stats(self) -> dict:
        """Routing counters plus each live shard's scheduler stats."""
        return {
            "n_shards": self.n_shards,
            "routed_affine": self.routed_affine,
            "routed_spilled": self.routed_spilled,
            "rejected": self.rejected,
            "jobs_rehomed": self.jobs_rehomed,
            "cache_entries_rehomed": self.cache_entries_rehomed,
            "cache": self.aggregate_cache_stats(),
            "shards": {
                str(shard.id): shard.scheduler.stats() for shard in self.shards
            },
        }
