"""Per-tenant token-bucket rate limits and quota accounting.

The scheduler's weighted-fair admission decides *who runs next* among
accepted jobs; this layer decides *what gets accepted at all*.  Each
tenant owns a token bucket (sustained ``rate`` tokens/second, ``burst``
capacity) plus an optional ceiling on outstanding jobs.  An admission
that would overdraw the bucket is refused with a positive
``retry_after`` — the modeled time until enough tokens refill — which
the front door surfaces as an HTTP 429 with a ``Retry-After`` header.

The clock is injectable (any ``() -> float`` seconds callable) so tests
drive refill deterministically; production uses ``time.monotonic``.
Everything here is synchronous and allocation-light: one dict lookup and
a couple of float ops per admission, on the front door's hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["RateLimiter", "TenantQuota", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    :meth:`take` either debits ``cost`` tokens and returns ``0.0``, or
    leaves the bucket untouched and returns the seconds until ``cost``
    tokens will be available — the retry hint.
    """

    def __init__(self, rate: float, burst: float, clock=None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill()
        return self._tokens

    def take(self, cost: float = 1.0) -> float:
        """Debit ``cost`` tokens; 0.0 on success, else seconds to retry."""
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        self._refill()
        if cost <= self._tokens:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission budget.

    ``rate``/``burst`` parameterise the token bucket (tokens are jobs by
    default; callers metering in service units pass a matching ``cost``
    to :meth:`RateLimiter.admit`).  ``max_outstanding`` additionally
    caps jobs accepted but not yet finished — a concurrency quota on top
    of the arrival-rate quota (None = unlimited).
    """

    rate: float = 64.0
    burst: float = 128.0
    max_outstanding: int | None = None


class RateLimiter:
    """Per-tenant token buckets + quota accounting for the front door.

    Parameters
    ----------
    default:
        Quota applied to tenants without an explicit entry.
    per_tenant:
        ``{tenant: TenantQuota}`` overrides.
    clock:
        Shared time source for every bucket (tests inject a fake).
    """

    def __init__(
        self,
        default: TenantQuota | None = None,
        per_tenant: "dict[str, TenantQuota] | None" = None,
        clock=None,
    ) -> None:
        self.default = default if default is not None else TenantQuota()
        self.per_tenant = dict(per_tenant or {})
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}
        self.admitted: "dict[str, int]" = {}
        self.throttled: "dict[str, int]" = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        """The effective quota of ``tenant`` (explicit or default)."""
        return self.per_tenant.get(tenant, self.default)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.quota_for(tenant)
            bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(
        self, tenant: str, cost: float = 1.0, outstanding: int | None = None
    ) -> float:
        """Try to admit one request; 0.0 admits, else seconds to retry.

        ``outstanding`` is the tenant's count of accepted-but-unfinished
        jobs (the caller tracks it — this layer holds no job state); when
        the quota caps it, an over-cap request is throttled with a
        bucket-derived hint and *no tokens are spent*.
        """
        quota = self.quota_for(tenant)
        if (
            quota.max_outstanding is not None
            and outstanding is not None
            and outstanding >= quota.max_outstanding
        ):
            self.throttled[tenant] = self.throttled.get(tenant, 0) + 1
            # No token refill can lift a concurrency cap; hint one
            # job-service interval so the caller re-checks soon.
            return max(cost / quota.rate, 1e-3)
        wait = self._bucket(tenant).take(cost)
        if wait > 0.0:
            self.throttled[tenant] = self.throttled.get(tenant, 0) + 1
        else:
            self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
        return wait

    def stats(self) -> dict:
        """Per-tenant admitted/throttled counts plus live token levels."""
        tenants = sorted(
            set(self.admitted) | set(self.throttled) | set(self._buckets)
        )
        return {
            tenant: {
                "admitted": self.admitted.get(tenant, 0),
                "throttled": self.throttled.get(tenant, 0),
                "tokens": (
                    self._buckets[tenant].tokens
                    if tenant in self._buckets
                    else self.quota_for(tenant).burst
                ),
                "rate": self.quota_for(tenant).rate,
                "max_outstanding": self.quota_for(tenant).max_outstanding,
            }
            for tenant in tenants
        }
