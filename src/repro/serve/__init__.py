"""repro.serve — the async front-door service layer over repro.sched.

Where :mod:`repro.sched` schedules jobs inside one process, this package
puts a network in front of a *fleet* of schedulers:

* :mod:`repro.serve.protocol` — versioned JSON wire schemas plus a
  dependency-free asyncio HTTP/1.1 codec (server and client halves);
* :mod:`repro.serve.router` — :class:`ShardRouter`: config-hash
  affinity via rendezvous hashing, power-of-two-choices spill, and
  zero-loss shard removal with checkpoint handoff;
* :mod:`repro.serve.limits` — per-tenant token-bucket rate limits and
  outstanding-job quotas behind HTTP 429 + ``Retry-After``;
* :mod:`repro.serve.autoscale` — queue-driven shard autoscaling with
  hysteresis and cooldown, emitting ``serve_*`` gauges and the "serve"
  Chrome-trace track;
* :mod:`repro.serve.app` — :class:`ServeApp`, the asyncio HTTP server
  tying the above together on a single event loop.

Results fetched over HTTP are bit-identical to in-process
``repro.submit()`` for the same (config, seed, sweeps) — floats
round-trip exactly through JSON and spins are exact ±1.  See
``docs/serving.md``.
"""

from .app import JobRef, ServeApp
from .autoscale import Autoscaler, AutoscalePolicy
from .limits import RateLimiter, TenantQuota, TokenBucket
from .protocol import (
    LAST_CHUNK,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    config_from_wire,
    encode_chunk,
    http_request,
    http_response,
    read_http_request,
    result_to_wire,
    stream_frames,
)
from .router import Shard, ShardRouter

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "JobRef",
    "LAST_CHUNK",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RateLimiter",
    "Request",
    "ServeApp",
    "Shard",
    "ShardRouter",
    "TenantQuota",
    "TokenBucket",
    "config_from_wire",
    "encode_chunk",
    "http_request",
    "http_response",
    "read_http_request",
    "result_to_wire",
    "stream_frames",
]
