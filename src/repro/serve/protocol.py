"""The repro.serve wire protocol: JSON schemas + a stdlib HTTP/1.1 layer.

Two concerns live here, deliberately separated from the service logic in
:mod:`repro.serve.app`:

1. **Schemas.** :func:`config_from_wire` turns a whitelisted JSON object
   into a frozen :class:`~repro.api.SimulationConfig` (unknown fields
   are a 400, never a silent drop), and :func:`result_to_wire`
   serialises a :class:`~repro.sched.job.JobResult` losslessly — spin
   values are exact ±1 floats and Python's JSON encoder round-trips
   floats bit-exactly, so a result fetched over HTTP is *bit-identical*
   to the in-process ``repro.submit()`` result (the acceptance gate in
   ``benchmarks/bench_serve.py``).  ``lattice_sha256`` rides along for
   cheap integrity checks.

2. **HTTP plumbing.** A minimal, dependency-free asyncio HTTP/1.1
   codec: :func:`read_http_request` parses one request from a stream
   (keep-alive aware), :func:`http_response` renders a JSON response,
   and :func:`encode_chunk` / :data:`LAST_CHUNK` frame the chunked
   ``/stream`` endpoint.  The client half (:func:`http_request`,
   :func:`stream_frames`) exists so tests, benchmarks and the harness
   can exercise the server over real sockets without any third-party
   HTTP library — the container ships numpy/scipy only.

The protocol is versioned by :data:`PROTOCOL_VERSION`; responses carry
it so clients can detect schema drift.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

import numpy as np

__all__ = [
    "LAST_CHUNK",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "config_from_wire",
    "encode_chunk",
    "http_request",
    "http_response",
    "read_http_request",
    "result_to_wire",
    "stream_frames",
]

#: Versioned wire-protocol identifier; every JSON response carries it.
PROTOCOL_VERSION = "repro.serve/v1"

#: Config fields a tenant may set over the wire.  Pool/telemetry-owning
#: fields (grid, fault_plan, telemetry, record_trace, ...) are the
#: scheduler's — :class:`~repro.sched.job.JobSpec` would reject them
#: anyway, but rejecting unknown keys here gives a 400 with the field
#: name instead of a late validation error.
_CONFIG_FIELDS = frozenset(
    {
        "shape", "temperature", "beta", "field", "updater", "dtype",
        "backend", "seed", "block_shape", "initial", "fused", "traced",
    }
)
_MODEL_FIELDS = frozenset({"couplings", "disorder_seed", "field", "lattice"})

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Terminating frame of a chunked response body.
LAST_CHUNK = b"0\r\n\r\n"

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request; maps to an HTTP 400 with the message."""


# -- schemas ------------------------------------------------------------------


def config_from_wire(payload: object) -> "object":
    """Build a :class:`~repro.api.SimulationConfig` from a JSON object.

    Accepts exactly the whitelisted scalar fields plus an optional
    ``model`` sub-object (couplings / disorder_seed / field / lattice).
    JSON lists become tuples (``shape``/``block_shape``) or a float32
    spin array (``initial``); anything else is passed through to the
    config's own validation.  Unknown keys raise :class:`ProtocolError`.
    """
    from ..api import ModelSpec, SimulationConfig

    if not isinstance(payload, dict):
        raise ProtocolError(
            f"config must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - _CONFIG_FIELDS - {"model"}
    if unknown:
        raise ProtocolError(
            f"unknown config field(s): {sorted(unknown)}; "
            f"allowed: {sorted(_CONFIG_FIELDS | {'model'})}"
        )
    kwargs = dict(payload)
    model = kwargs.pop("model", None)
    if model is not None:
        if not isinstance(model, dict):
            raise ProtocolError(
                f"model must be a JSON object, got {type(model).__name__}"
            )
        unknown = set(model) - _MODEL_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown model field(s): {sorted(unknown)}; "
                f"allowed: {sorted(_MODEL_FIELDS)}"
            )
        try:
            kwargs["model"] = ModelSpec(**model)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid model spec: {exc}") from exc
    for key in ("shape", "block_shape"):
        if isinstance(kwargs.get(key), list):
            kwargs[key] = tuple(kwargs[key])
    if isinstance(kwargs.get("initial"), list):
        kwargs["initial"] = np.asarray(kwargs["initial"], dtype=np.float32)
    backend = kwargs.get("backend")
    if backend is not None and backend not in ("numpy", "tpu"):
        raise ProtocolError(
            f"backend must be 'numpy', 'tpu' or omitted, got {backend!r}"
        )
    try:
        return SimulationConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc


def result_to_wire(result) -> dict:
    """Serialise a :class:`~repro.sched.job.JobResult` losslessly to JSON.

    Spins are exact ±1.0 float32 values and the scalar observables
    round-trip bit-exactly through Python's JSON float encoding, so the
    wire result equals the in-process result to the last bit.
    """
    lattice = np.ascontiguousarray(np.asarray(result.lattice, dtype=np.float32))
    return {
        "magnetization": float(result.magnetization),
        "energy": float(result.energy),
        "sweeps": int(result.sweeps),
        "lattice": lattice.tolist(),
        "lattice_sha256": hashlib.sha256(lattice.tobytes()).hexdigest(),
    }


# -- server-side HTTP ---------------------------------------------------------


@dataclass
class Request:
    """One parsed HTTP request (method, split target, headers, raw body)."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body decoded as JSON (:class:`ProtocolError` when invalid)."""
        if not self.body:
            raise ProtocolError("request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_http_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.1 request off ``reader``; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated HTTP request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("HTTP request head too large") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise ProtocolError("HTTP request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ProtocolError(f"malformed request line: {lines[0]!r}") from exc
    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise ProtocolError(f"bad Content-Length: {length!r}") from exc
        if n < 0 or n > _MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length: {n}")
        if n:
            body = await reader.readexactly(n)
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def http_response(
    status: int,
    payload: object = None,
    headers: dict | None = None,
    chunked: bool = False,
) -> bytes:
    """Render a response head (+ JSON body unless ``chunked``).

    JSON payloads get the protocol version stamped in; chunked heads
    carry ``Transfer-Encoding: chunked`` and the caller streams the body
    with :func:`encode_chunk` / :data:`LAST_CHUNK`.
    """
    text = _STATUS_TEXT.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {text}"]
    extra = dict(headers or {})
    body = b""
    if chunked:
        extra.setdefault("Content-Type", "application/x-ndjson")
        extra["Transfer-Encoding"] = "chunked"
    else:
        if payload is None:
            payload = {}
        if isinstance(payload, dict):
            payload = {"protocol": PROTOCOL_VERSION, **payload}
        body = (json.dumps(payload) + "\n").encode("utf-8")
        extra.setdefault("Content-Type", "application/json")
        extra["Content-Length"] = str(len(body))
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def encode_chunk(payload: dict) -> bytes:
    """Frame one NDJSON line as an HTTP chunk (the ``/stream`` format)."""
    data = (json.dumps(payload) + "\n").encode("utf-8")
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


# -- client-side HTTP (tests / benchmarks / harness) --------------------------


async def _read_response_head(reader) -> tuple[int, dict]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_chunks(reader):
    """Yield decoded chunk payloads until the terminating chunk."""
    while True:
        size_line = await reader.readuntil(b"\r\n")
        size = int(size_line.strip(), 16)
        if size == 0:
            await reader.readuntil(b"\r\n")
            return
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # trailing CRLF
        yield data


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict | None = None,
) -> tuple[int, dict, object]:
    """One request/response round trip; returns (status, headers, body).

    The body is JSON-decoded when the response carries a JSON content
    type, raw bytes otherwise.  Opens and closes its own connection —
    simple and race-free for tests; sustained load uses many of these
    concurrently.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status, resp_headers = await _read_response_head(reader)
        if resp_headers.get("transfer-encoding") == "chunked":
            chunks = [chunk async for chunk in _read_chunks(reader)]
            raw = b"".join(chunks)
        elif "content-length" in resp_headers:
            raw = await reader.readexactly(int(resp_headers["content-length"]))
        else:
            raw = await reader.read()
        content_type = resp_headers.get("content-type", "")
        decoded: object = raw
        if "json" in content_type and raw:
            decoded = json.loads(raw.decode("utf-8"))
        return status, resp_headers, decoded
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def stream_frames(host: str, port: int, path: str) -> list[dict]:
    """Consume a chunked ``/stream`` response into its NDJSON frames.

    Returns the decoded frames in arrival order; raises
    :class:`ProtocolError` when the endpoint answered a non-streaming
    (error) response.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        status, headers = await _read_response_head(reader)
        if headers.get("transfer-encoding") != "chunked":
            raise ProtocolError(
                f"expected a chunked stream, got status {status} "
                f"({headers.get('content-type', 'no content type')})"
            )
        frames: list[dict] = []
        buffer = b""
        async for chunk in _read_chunks(reader):
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    frames.append(json.loads(line.decode("utf-8")))
        return frames
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
