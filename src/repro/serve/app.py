"""The repro.serve front door: an asyncio HTTP/JSON service.

:class:`ServeApp` binds a stdlib asyncio socket server in front of a
:class:`~repro.serve.router.ShardRouter` and exposes the scheduler fleet
as six endpoints:

=========================== ==================================================
``POST /v1/jobs``           submit a config; 202 + job id (or 429/503)
``GET /v1/jobs/{id}``        job state + incremental observables
``GET /v1/jobs/{id}/result`` block until done, return the full result
``GET /v1/jobs/{id}/stream`` chunked NDJSON progress frames, then the result
``GET /v1/healthz``          liveness + admission state
``GET /v1/statsz``           router / limiter / autoscaler / HTTP counters
=========================== ==================================================

Everything runs on **one event loop**: request handlers and the driver
task (which steps busy shards and ticks the autoscaler) interleave
cooperatively, so the synchronous schedulers underneath are never
touched from two threads.  Handlers that must wait — ``/result``,
``/stream`` — await a per-job event the driver sets, yielding the loop
to the very stepping that finishes their job.

Backpressure is layered: the per-tenant :class:`~repro.serve.limits.
RateLimiter` refuses before any shard is consulted (429 with a
bucket-derived ``Retry-After``), and a fleet-wide saturated submit
surfaces the scheduler's modeled drain hint the same way.  A 202 is a
contract: accepted jobs survive autoscaler scale-downs via checkpoint
handoff (:meth:`_rehome` re-points the serve-side reference at the
adopting shard's new handle).
"""

from __future__ import annotations

import asyncio
import math

from ..telemetry.metrics import MetricsRegistry
from ..sched.scheduler import SchedulerDrainingError, SchedulerSaturatedError
from .autoscale import Autoscaler, AutoscalePolicy
from .limits import RateLimiter
from .protocol import (
    LAST_CHUNK,
    ProtocolError,
    Request,
    encode_chunk,
    http_response,
    read_http_request,
    result_to_wire,
    config_from_wire,
)
from .router import ShardRouter

__all__ = ["JobRef", "ServeApp"]

_SUBMIT_FIELDS = frozenset({"config", "sweeps", "priority", "tenant"})


class _HttpError(Exception):
    """Internal: a handler-raised response with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
#: Nominal span width for wall-clock-free serve events on the modeled
#: timeline (matches the autoscaler's event spans).
_EVENT_SPAN_S = 1e-3
#: Driver nap between polls when the fleet is idle (real seconds).
_IDLE_SLEEP_S = 0.005


class JobRef:
    """The serve-side identity of one accepted job.

    ``job``/``shard`` are *mutable*: a scale-down re-points them at the
    adopting shard's handle while the public ``id`` stays stable — the
    tenant's URL never changes because the topology did.
    """

    __slots__ = ("id", "tenant", "shard", "job", "cache_key", "event", "rehomes")

    def __init__(self, ref_id: str, tenant: str, shard, job, cache_key: str):
        self.id = ref_id
        self.tenant = tenant
        self.shard = shard
        self.job = job
        self.cache_key = cache_key
        self.event = asyncio.Event()
        self.rehomes = 0

    def status(self) -> dict:
        info = self.shard.scheduler.peek(self.job)
        return {
            "id": self.id,
            "tenant": self.tenant,
            "shard": self.shard.id,
            "cache_key": self.cache_key,
            "from_cache": self.job.from_cache,
            "preemptions": self.job.preemptions,
            "rehomes": self.rehomes,
            **info,
        }


class ServeApp:
    """HTTP/JSON front door over a shard router (stdlib asyncio only).

    Parameters
    ----------
    router:
        The shard fleet; a default 2-shard router is built when omitted.
    limiter:
        Per-tenant admission quotas (default: permissive defaults).
    policy:
        Autoscaler thresholds; ``None`` uses :class:`AutoscalePolicy`
        defaults.  Pass ``autoscale=False`` to pin the topology.
    host / port:
        Bind address; port 0 picks a free port (read ``app.port`` after
        :meth:`start`).
    autoscale_every:
        Driver steps between autoscaler observations.
    """

    def __init__(
        self,
        router: ShardRouter | None = None,
        limiter: RateLimiter | None = None,
        policy: AutoscalePolicy | None = None,
        metrics: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        autoscale: bool = True,
        autoscale_every: int = 8,
    ) -> None:
        self.router = router if router is not None else ShardRouter(n_shards=2)
        self.limiter = limiter if limiter is not None else RateLimiter()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.autoscaler = Autoscaler(
            self.router,
            policy=policy,
            metrics=self.metrics,
            on_rehome=self._rehome,
        )
        self.autoscale = bool(autoscale)
        self.autoscale_every = int(autoscale_every)
        self.host = host
        self._requested_port = int(port)
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._driver: asyncio.Task | None = None
        self._running = False
        self._wake = asyncio.Event()
        self._refs: "dict[str, JobRef]" = {}
        self._unsettled: "list[JobRef]" = []
        self._outstanding: "dict[str, int]" = {}
        self._next_ref = 0
        self._steps = 0
        self.http_requests = 0
        self.accepted = 0
        self.throttled = 0
        self.saturated = 0
        self._request_log: "list[dict]" = []

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and launch the driver task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._driver = asyncio.create_task(self._drive())

    async def stop(self, finish: bool = True) -> None:
        """Stop serving; ``finish=True`` drains accepted work first."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._driver is not None:
            self._wake.set()
            await self._driver
            self._driver = None
        if finish:
            self.router.drain()
            self._settle()

    async def __aenter__(self) -> "ServeApp":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- driver --------------------------------------------------------------

    async def _drive(self) -> None:
        """Step busy shards and tick the autoscaler until stopped.

        The loop yields after every scheduling round so request handlers
        run interleaved; when the fleet goes idle it naps on the wake
        event a submit handler sets.
        """
        while self._running:
            if any(shard.busy for shard in self.router.shards):
                self.router.step()
                self._steps += 1
                if self._steps % self.autoscale_every == 0:
                    if self.autoscale:
                        self.autoscaler.observe()
                    else:
                        self.autoscaler.publish()
                self._settle()
                await asyncio.sleep(0)
            else:
                if self.autoscale:
                    self.autoscaler.observe()
                else:
                    self.autoscaler.publish()
                self._settle()
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), _IDLE_SLEEP_S)
                except asyncio.TimeoutError:
                    pass

    def _settle(self) -> None:
        """Release waiters and quota for refs whose jobs finished."""
        still = []
        for ref in self._unsettled:
            if ref.job.done:
                count = self._outstanding.get(ref.tenant, 0)
                self._outstanding[ref.tenant] = max(0, count - 1)
                ref.event.set()
            else:
                still.append(ref)
        self._unsettled = still
        self.metrics.gauge("serve_jobs_outstanding").set(len(still))

    def _rehome(self, token: dict, shard, new_job) -> None:
        """Re-point refs whose backing job moved in a scale-down."""
        old = token["job"]
        for ref in self._refs.values():
            if ref.job is old:
                ref.job = new_job
                ref.shard = shard
                ref.rehomes += 1

    def _now(self) -> float:
        return self.autoscaler._now()

    def _log_span(self, name: str, **args) -> None:
        self._request_log.append(
            {
                "name": name,
                "start": self._now(),
                "duration": _EVENT_SPAN_S,
                "args": args,
            }
        )

    @property
    def serve_log(self) -> "list[dict]":
        """Front-door + autoscaler spans, merged for the "serve" track."""
        spans = self._request_log + self.autoscaler.serve_log
        spans.sort(key=lambda span: span["start"])
        return spans

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        http_response(400, {"error": str(exc)})
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self.http_requests += 1
                try:
                    done = await self._dispatch(request, writer)
                except ProtocolError as exc:
                    writer.write(http_response(400, {"error": str(exc)}))
                    await writer.drain()
                    done = False
                except _HttpError as exc:
                    writer.write(
                        http_response(exc.status, {"error": str(exc)})
                    )
                    await writer.drain()
                    done = False
                except Exception as exc:  # handler bug: fail the request
                    writer.write(
                        http_response(
                            500, {"error": f"{type(exc).__name__}: {exc}"}
                        )
                    )
                    await writer.drain()
                    done = False
                if done or not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request, writer) -> bool:
        """Route one request; returns True when the connection must close."""
        path = request.path
        if path == "/v1/jobs":
            self._require(request, "POST")
            writer.write(self._post_job(request))
            await writer.drain()
            return False
        if path == "/v1/healthz":
            self._require(request, "GET")
            writer.write(self._healthz())
            await writer.drain()
            return False
        if path == "/v1/statsz":
            self._require(request, "GET")
            writer.write(http_response(200, self.stats()))
            await writer.drain()
            return False
        if path.startswith("/v1/jobs/"):
            parts = path[len("/v1/jobs/"):].split("/")
            ref = self._refs.get(parts[0])
            if ref is None:
                writer.write(
                    http_response(404, {"error": f"no such job: {parts[0]}"})
                )
                await writer.drain()
                return False
            if len(parts) == 1:
                self._require(request, "GET")
                writer.write(http_response(200, ref.status()))
                await writer.drain()
                return False
            if len(parts) == 2 and parts[1] == "result":
                self._require(request, "GET")
                await self._send_result(ref, writer)
                return False
            if len(parts) == 2 and parts[1] == "stream":
                self._require(request, "GET")
                await self._stream(ref, writer)
                return True  # chunked stream ends the connection
        writer.write(
            http_response(404, {"error": f"no route for {path}"})
        )
        await writer.drain()
        return False

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise _HttpError(
                405, f"{request.path} requires {method}, got {request.method}"
            )

    # -- endpoints -----------------------------------------------------------

    def _post_job(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError("submit body must be a JSON object")
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown submit field(s): {sorted(unknown)}; "
                f"allowed: {sorted(_SUBMIT_FIELDS)}"
            )
        if "config" not in payload:
            raise ProtocolError("submit body requires a 'config' object")
        config = config_from_wire(payload["config"])
        sweeps = payload.get("sweeps", 100)
        if not isinstance(sweeps, int) or isinstance(sweeps, bool) or sweeps < 1:
            raise ProtocolError(f"sweeps must be a positive integer, got {sweeps!r}")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError(f"priority must be an integer, got {priority!r}")
        tenant = str(payload.get("tenant", "default"))

        wait = self.limiter.admit(
            tenant, outstanding=self._outstanding.get(tenant, 0)
        )
        if wait > 0.0:
            self.throttled += 1
            self.metrics.counter("serve_http_429").inc()
            self._log_span("shed quota", tenant=tenant, retry_after_s=wait)
            return self._throttle_response(wait, "tenant quota exceeded")
        try:
            shard, job = self.router.submit(
                config, sweeps, priority=priority, tenant=tenant
            )
        except SchedulerDrainingError as exc:
            return http_response(
                503,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers=self._retry_headers(exc.retry_after_s),
            )
        except SchedulerSaturatedError as exc:
            self.saturated += 1
            self.metrics.counter("serve_http_429").inc()
            self._log_span(
                "shed saturated", tenant=tenant, retry_after_s=exc.retry_after_s
            )
            return self._throttle_response(
                exc.retry_after_s, "all shards saturated"
            )

        self._next_ref += 1
        ref = JobRef(f"j{self._next_ref:06d}", tenant, shard, job, job.cache_key)
        self._refs[ref.id] = ref
        if job.done:
            ref.event.set()
        else:
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
            self._unsettled.append(ref)
        self.accepted += 1
        self.metrics.counter("serve_http_accepted").inc()
        self._log_span("accept", tenant=tenant, shard=shard.id, job=ref.id)
        self._wake.set()
        return http_response(
            202,
            {
                "id": ref.id,
                "state": job.state,
                "shard": shard.id,
                "cache_key": job.cache_key,
                "from_cache": job.from_cache,
            },
        )

    @staticmethod
    def _retry_headers(retry_after_s: "float | None") -> dict:
        seconds = retry_after_s if retry_after_s is not None else 1.0
        return {"Retry-After": str(max(1, math.ceil(seconds)))}

    def _throttle_response(
        self, retry_after_s: "float | None", reason: str
    ) -> bytes:
        return http_response(
            429,
            {"error": reason, "retry_after_s": retry_after_s},
            headers=self._retry_headers(retry_after_s),
        )

    async def _send_result(self, ref: JobRef, writer) -> None:
        self._wake.set()
        await ref.event.wait()
        job = ref.job
        if job.state == "failed":
            writer.write(
                http_response(
                    500,
                    {
                        "id": ref.id,
                        "state": job.state,
                        "error": str(job.error),
                    },
                )
            )
        else:
            writer.write(
                http_response(
                    200,
                    {
                        "id": ref.id,
                        "state": job.state,
                        "cache_key": ref.cache_key,
                        "from_cache": job.from_cache,
                        "result": result_to_wire(job.result),
                    },
                )
            )
        await writer.drain()

    async def _stream(self, ref: JobRef, writer) -> None:
        """Chunked NDJSON: one frame per progress change, then the result."""
        writer.write(http_response(200, chunked=True))
        last_reported = None
        self._wake.set()
        while not ref.job.done:
            info = ref.shard.scheduler.peek(ref.job)
            snapshot = (info["state"], info["sweeps_done"])
            if snapshot != last_reported:
                last_reported = snapshot
                writer.write(encode_chunk({"id": ref.id, **info}))
                await writer.drain()
            try:
                await asyncio.wait_for(ref.event.wait(), _IDLE_SLEEP_S)
            except asyncio.TimeoutError:
                pass
        job = ref.job
        final: dict = {"id": ref.id, "state": job.state, "final": True}
        if job.state == "failed":
            final["error"] = str(job.error)
        else:
            final["result"] = result_to_wire(job.result)
        writer.write(encode_chunk(final))
        writer.write(LAST_CHUNK)
        await writer.drain()

    def _healthz(self) -> bytes:
        admitting = any(shard.admitting for shard in self.router.shards)
        return http_response(
            200 if admitting else 503,
            {
                "status": "ok" if admitting else "draining",
                "n_shards": self.router.n_shards,
                "admitting": admitting,
            },
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Everything ``/v1/statsz`` reports, as plain JSON data."""
        return {
            "http": {
                "requests": self.http_requests,
                "accepted": self.accepted,
                "throttled": self.throttled,
                "saturated": self.saturated,
            },
            "jobs": {
                "total": len(self._refs),
                "unsettled": len(self._unsettled),
                "outstanding": dict(self._outstanding),
            },
            "router": self.router.stats(),
            "limiter": self.limiter.stats(),
            "autoscaler": self.autoscaler.stats(),
            "metrics": self.metrics.as_dict(),
        }
