"""Queue-driven shard autoscaling with hysteresis.

The :class:`Autoscaler` watches the router's queue-depth and occupancy
telemetry and grows or shrinks the shard pool between configured bounds.
Three guards keep it from flapping:

* **hysteresis** — the pressure signal must sit past the high (or low)
  water mark for N *consecutive* observations before a scale event; one
  spiky sample never moves the topology;
* **cooldown** — after any event, a minimum number of observations must
  pass before the next one, so a scale-up gets time to absorb load
  before the (now lower) pressure reading triggers a scale-down;
* **zero loss** — scale-down routes through
  :meth:`~repro.serve.router.ShardRouter.remove_shard`, which
  checkpoints the victim's running batches and adopts every unfinished
  job into surviving shards; accepted work is never shed.

Every observation books ``serve_*`` gauges into the metrics registry,
and every scale decision lands on ``serve_log`` — the span buffer the
Chrome-trace exporter renders as the "serve autoscale" track, so scale
events line up against the per-device timelines that caused them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..telemetry.metrics import NULL_REGISTRY

__all__ = ["Autoscaler", "AutoscalePolicy"]

#: Nominal span width for instantaneous scale decisions on the modeled
#: timeline (pure decisions have no modeled cost; zero-width "X" events
#: render invisibly in Perfetto).
_EVENT_SPAN_S = 1e-3


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and thresholds for the hysteresis controller.

    ``high_water`` / ``low_water`` are pressure thresholds on the pool's
    mean queue load factor (queue depth over ``max_queue``, averaged
    across shards).  ``hysteresis`` is the consecutive-observation count
    required past a threshold; ``cooldown`` the observations that must
    elapse after any scale event before the next.
    """

    min_shards: int = 1
    max_shards: int = 8
    high_water: float = 0.75
    low_water: float = 0.15
    hysteresis: int = 3
    cooldown: int = 5

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise ValueError(
                f"max_shards ({self.max_shards}) must be >= "
                f"min_shards ({self.min_shards})"
            )
        if not 0.0 <= self.low_water < self.high_water:
            raise ValueError(
                f"need 0 <= low_water < high_water, got "
                f"low={self.low_water} high={self.high_water}"
            )
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


class Autoscaler:
    """Grow/shrink a :class:`~repro.serve.router.ShardRouter` from load.

    Parameters
    ----------
    router:
        The shard pool under control.
    policy:
        Thresholds and bounds (default :class:`AutoscalePolicy`).
    metrics:
        A :class:`~repro.telemetry.metrics.MetricsRegistry` for the
        ``serve_*`` gauges (default: the shared no-op registry).
    on_rehome:
        Forwarded to :meth:`ShardRouter.remove_shard` on scale-down so
        the front door can re-point job references.
    """

    def __init__(
        self, router, policy=None, metrics=None, on_rehome=None
    ) -> None:
        self.router = router
        self.policy = policy if policy is not None else AutoscalePolicy()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.on_rehome = on_rehome
        self._above = 0
        self._below = 0
        # Start past cooldown: an initial overload may scale immediately
        # (hysteresis still applies).
        self._since_event = self.policy.cooldown
        self.observations = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.events: "list[dict]" = []
        #: Chrome-trace spans ("serve autoscale" track), modeled seconds.
        self.serve_log: "list[dict]" = []

    # -- signals -------------------------------------------------------------

    def pressure(self) -> float:
        """Mean queue load factor across shards — the scaling signal.

        Queue depth (not device occupancy) is the leading indicator: a
        pool can be 100% busy and healthy, but a growing queue means
        arrivals outrun service and more shards are needed.
        """
        shards = self.router.shards
        if not shards:
            return 0.0
        return sum(shard.load_factor for shard in shards) / len(shards)

    def occupancy(self) -> float:
        """Fraction of shards with work in flight (secondary signal)."""
        shards = self.router.shards
        if not shards:
            return 0.0
        return sum(1 for shard in shards if shard.busy) / len(shards)

    def _now(self) -> float:
        """Pool-wide modeled time: the furthest shard clock."""
        return max(
            (s.scheduler.pool.makespan() for s in self.router.shards),
            default=0.0,
        )

    def publish(self) -> None:
        """Refresh the ``serve_*`` gauges without a controller tick.

        For deployments that pin the topology (``autoscale=False``) but
        still want live telemetry.
        """
        self._publish(self.pressure(), self.occupancy())

    # -- control loop --------------------------------------------------------

    def observe(self) -> "str | None":
        """One controller tick; returns ``"up"``, ``"down"`` or ``None``.

        Reads the pressure signal, updates the hysteresis counters, and
        applies at most one scale event when a counter crosses its
        threshold outside the cooldown window.  Also refreshes the
        ``serve_*`` gauges, so the caller's metrics stay live whether or
        not anything scaled.
        """
        policy = self.policy
        pressure = self.pressure()
        occupancy = self.occupancy()
        self.observations += 1
        self._since_event += 1
        if pressure >= policy.high_water:
            self._above += 1
            self._below = 0
        elif pressure <= policy.low_water:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0

        action = None
        if self._since_event > policy.cooldown:
            if (
                self._above >= policy.hysteresis
                and self.router.n_shards < policy.max_shards
            ):
                action = self._scale_up(pressure)
            elif (
                self._below >= policy.hysteresis
                and self.router.n_shards > policy.min_shards
            ):
                action = self._scale_down(pressure)
        self._publish(pressure, occupancy)
        return action

    def _scale_up(self, pressure: float) -> str:
        shard = self.router.add_shard()
        self.scale_ups += 1
        self._record_event(
            "scale_up", pressure, shard_id=shard.id, jobs_moved=0
        )
        return "up"

    def _scale_down(self, pressure: float) -> str:
        # Victim = least outstanding modeled service: cheapest handoff,
        # and the laggard shard is the one load no longer justifies.
        victim = min(
            self.router.shards,
            key=lambda s: (s.scheduler.outstanding_service(), s.id),
        )
        moved = self.router.remove_shard(victim.id, on_rehome=self.on_rehome)
        self.scale_downs += 1
        self._record_event(
            "scale_down", pressure, shard_id=victim.id, jobs_moved=moved
        )
        return "down"

    def _record_event(
        self, kind: str, pressure: float, shard_id: int, jobs_moved: int
    ) -> None:
        event = {
            "kind": kind,
            "pressure": pressure,
            "shard_id": shard_id,
            "jobs_moved": jobs_moved,
            "n_shards": self.router.n_shards,
            "observation": self.observations,
        }
        self.events.append(event)
        self.serve_log.append(
            {
                "name": f"{kind} shard {shard_id}",
                "start": self._now(),
                "duration": _EVENT_SPAN_S,
                "args": {
                    "pressure": pressure,
                    "jobs_moved": jobs_moved,
                    "n_shards": self.router.n_shards,
                },
            }
        )
        self._above = 0
        self._below = 0
        self._since_event = 0

    def _publish(self, pressure: float, occupancy: float) -> None:
        metrics = self.metrics
        metrics.gauge("serve_shards").set(self.router.n_shards)
        metrics.gauge("serve_pressure").set(pressure)
        metrics.gauge("serve_occupancy").set(occupancy)
        metrics.gauge("serve_queue_depth").set(
            sum(shard.queue_depth for shard in self.router.shards)
        )
        metrics.gauge("serve_scale_ups").set(self.scale_ups)
        metrics.gauge("serve_scale_downs").set(self.scale_downs)

    def stats(self) -> dict:
        return {
            "observations": self.observations,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "n_shards": self.router.n_shards,
            "pressure": self.pressure(),
            "occupancy": self.occupancy(),
            "events": list(self.events),
        }
