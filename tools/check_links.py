#!/usr/bin/env python
"""Check that local markdown links and link-style file references resolve.

Scans every tracked ``*.md`` file for inline markdown links
(``[text](target)``) and verifies that relative targets exist on disk
(anchors and external ``http(s):``/``mailto:`` targets are skipped;
anchor-only fragments within a file are not resolved).  Zero-dependency
by design — it runs in CI's docs job and anywhere ``python`` runs.

Usage::

    python tools/check_links.py            # check the whole repo
    python tools/check_links.py docs       # check one subtree
    python tools/check_links.py --require docs/engines.md   # + existence

``--require PAGE...`` additionally asserts that the named repo-relative
pages exist and are reachable by the scan — CI uses it to pin
must-not-regress documentation pages (a deleted page with no inbound
links would otherwise pass the link check silently).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are rare in this repo.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
_SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".venv", "node_modules"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        if plain.startswith("/"):
            resolved = root / plain.lstrip("/")
        else:
            resolved = path.parent / plain
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            errors.append(f"{path.relative_to(root)}:{line}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    root = Path(__file__).resolve().parent.parent
    required: list[str] = []
    if "--require" in args:
        at = args.index("--require")
        required = args[at + 1 :]
        args = args[:at]
        if not required:
            print("--require needs at least one page path", file=sys.stderr)
            return 2
    scan = root / args[0] if args else root
    if not scan.exists():
        print(f"no such path: {scan}", file=sys.stderr)
        return 2
    errors: list[str] = []
    n_files = 0
    scanned: set[Path] = set()
    for md in iter_markdown(scan):
        n_files += 1
        scanned.add(md.resolve())
        errors.extend(check_file(md, root))
    for page in required:
        path = (root / page).resolve()
        if not path.exists():
            errors.append(f"{page}: required page is missing")
        elif path not in scanned:
            errors.append(f"{page}: required page exists but was not scanned")
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {n_files} markdown files: {len(errors)} problems")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
