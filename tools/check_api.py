#!/usr/bin/env python
"""API-surface lint, run in CI.

Two invariants keep the public surface deliberate:

1. **No symbol escapes ``__all__``** — every module under ``src/repro``
   must define ``__all__``, every name listed in it must exist, and
   every top-level public ``def`` / ``class`` defined in the module
   (not imported into it) must be listed.  Helpers stay underscored or
   get blessed explicitly; nothing leaks by accident.

2. **Config fields always default** — every field of the public config
   dataclasses (``repro.api.SimulationConfig`` and its nested
   ``ModelSpec`` / ``LadderSpec``) carries a default (or factory), so
   each stays constructible bare and adding a field is never a breaking
   change for existing call sites.

3. **The serve facade is total** — ``repro.serve.__all__`` is sorted,
   duplicate-free, and re-exports (identically, by object) every name
   its submodules list in their own ``__all__``.  The package is the
   wire-protocol surface tenants program against; a submodule symbol
   missing from the facade is an API leak the first out-of-tree client
   would fossilize.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

# Modules allowed to skip __all__ entirely (single-assignment trivia).
ALL_EXEMPT = {"repro/version.py"}


def module_all(tree: ast.Module) -> list[str] | None:
    """The literal ``__all__`` list of a parsed module, if any."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None
                return [str(name) for name in value]
    return None


def public_definitions(tree: ast.Module) -> list[str]:
    """Top-level public def/class names defined (not imported) here."""
    names = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                names.append(node.name)
    return names


def check_all_invariant() -> list[str]:
    errors = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT / "src").as_posix()
        if rel in ALL_EXEMPT:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        declared = module_all(tree)
        if declared is None:
            errors.append(f"{rel}: missing (or non-literal) __all__")
            continue
        defined = public_definitions(tree)
        for name in defined:
            if name not in declared:
                errors.append(
                    f"{rel}: public symbol {name!r} escapes __all__ "
                    "(list it or underscore it)"
                )
    return errors


def check_all_resolves() -> list[str]:
    """Every name each repro module lists in __all__ actually exists."""
    import importlib
    import pkgutil

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro

    errors = []
    modules = ["repro"] + [
        name
        for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    for module_name in modules:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            if not hasattr(module, name):
                errors.append(
                    f"{module_name}: __all__ lists {name!r} which does not exist"
                )
    return errors


def check_config_defaults() -> list[str]:
    import dataclasses

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.api import LadderSpec, ModelSpec, SimulationConfig

    errors = []
    for cls in (SimulationConfig, ModelSpec, LadderSpec):
        for field in dataclasses.fields(cls):
            if (
                field.default is dataclasses.MISSING
                and field.default_factory is dataclasses.MISSING
            ):
                errors.append(
                    f"repro.api.{cls.__name__}: field {field.name!r} has no "
                    "default — every config field must default"
                )
    return errors


def check_serve_surface() -> list[str]:
    """``repro.serve`` re-exports every submodule symbol, sorted, once."""
    import importlib
    import pkgutil

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro.serve as serve

    errors = []
    declared = list(getattr(serve, "__all__", ()))
    if declared != sorted(declared):
        errors.append("repro.serve: __all__ is not sorted")
    if len(declared) != len(set(declared)):
        errors.append("repro.serve: __all__ has duplicate entries")
    facade = set(declared)
    for info in pkgutil.iter_modules(serve.__path__):
        module = importlib.import_module(f"repro.serve.{info.name}")
        for name in getattr(module, "__all__", ()):
            if name not in facade:
                errors.append(
                    f"repro.serve: {info.name}.__all__ exports {name!r} "
                    "missing from the package facade"
                )
            elif getattr(serve, name, None) is not getattr(module, name):
                errors.append(
                    f"repro.serve: facade {name!r} is not the same object "
                    f"as serve.{info.name}.{name}"
                )
    return errors


def main() -> int:
    errors = (
        check_all_invariant()
        + check_all_resolves()
        + check_config_defaults()
        + check_serve_surface()
    )
    if errors:
        for line in errors:
            print(f"check_api: {line}")
        print(f"check_api: FAILED ({len(errors)} violation(s))")
        return 1
    print("check_api: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
